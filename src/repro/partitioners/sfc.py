"""Space-filling-curve (Morton order) partitioner.

A cheap geometric partitioner contemporaries of the paper used as a
middle ground between BLOCK (free, structure-blind) and RCB (median
finding per level): quantize coordinates onto a 2^b grid, interleave the
bits into a Morton key, sort, and cut the curve into weight-balanced
segments.  One sort instead of log P median searches.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import (
    PartitionProblem,
    PartitionResult,
    Partitioner,
    register_partitioner,
)

#: quantization bits per coordinate axis
MORTON_BITS = 10


def morton_keys(coords: np.ndarray, bits: int = MORTON_BITS) -> np.ndarray:
    """Morton (Z-order) keys for a (ndim, N) coordinate array."""
    ndim, n = coords.shape
    if ndim < 1:
        raise ValueError("need at least one coordinate dimension")
    lo = coords.min(axis=1, keepdims=True)
    hi = coords.max(axis=1, keepdims=True)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    cells = ((coords - lo) / span * (2**bits - 1)).astype(np.uint64)
    keys = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        for d in range(ndim):
            bit = (cells[d] >> np.uint64(b)) & np.uint64(1)
            keys |= bit << np.uint64(b * ndim + d)
    return keys


@register_partitioner("SFC")
class SFCPartitioner(Partitioner):
    """Morton-order curve cut into weight-balanced contiguous segments."""

    needs_coords = True

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        self.validate(problem, n_parts)
        n = problem.n_vertices
        owners = np.zeros(n, dtype=np.int64)
        if n:
            keys = morton_keys(problem.coords)
            order = np.argsort(keys, kind="stable")
            w = problem.effective_weights()[order]
            cum = np.cumsum(w)
            total = cum[-1] if cum.size else 0.0
            if total > 0:
                targets = total * (np.arange(1, n_parts) / n_parts)
                cuts = np.searchsorted(cum, targets, side="left")
            else:
                cuts = np.linspace(0, n, n_parts + 1).astype(np.int64)[1:-1]
            owners[order] = np.searchsorted(
                np.asarray(cuts, dtype=np.int64), np.arange(n), side="right"
            )
        ndim = problem.coords.shape[0]
        return PartitionResult(
            owner_map=owners,
            n_parts=n_parts,
            # key construction + one parallel sample sort
            iops=float(n) * (MORTON_BITS * ndim + np.log2(max(n, 2)) * 3.0),
            flops=2.0 * n,
            sync_rounds=int(np.log2(max(n_parts, 2))) + 2,
            comm_bytes=16.0 * n,  # sort exchanges key+id records
        )
