"""Trace exporters: JSONL and Chrome/Perfetto ``trace_event`` JSON.

Two on-disk formats, one logical content (spans + instants + counters +
structured events + a metadata header):

* **JSONL** (``fmt="jsonl"``) -- one JSON object per line.  First line
  is ``{"kind": "meta", ...}``; span lines carry ``id``/``parent`` so
  nesting reconstructs exactly.  The round-trippable format -- see
  :func:`load_trace`.
* **Chrome trace** (``fmt="chrome"``) -- a single JSON object with a
  ``traceEvents`` array of complete (``"ph": "X"``) events, instants
  (``"ph": "i"``) and counter samples (``"ph": "C"``), timestamps in
  microseconds.  Load it in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing`` for a flame view.

:func:`load_trace` auto-detects the format and normalizes both back to
``{"meta", "spans", "events", "counters"}`` for the report CLI and the
round-trip tests.
"""

from __future__ import annotations

import json


def export_jsonl(path, tracer, *, bus=None, meta=None) -> str:
    """Write the tracer buffer (+ bus events) as JSONL; returns path."""
    with open(path, "w") as fh:
        header = {"kind": "meta", "format": "repro-obs-jsonl", "version": 1}
        if meta:
            header.update(meta)
        header["dropped_spans"] = tracer.dropped
        fh.write(json.dumps(header) + "\n")
        for rec in tracer.spans:
            fh.write(json.dumps(rec.to_dict()) + "\n")
        for ev in tracer.events:
            fh.write(json.dumps(ev) + "\n")
        if bus is not None:
            for rec in bus.all():
                fh.write(json.dumps(rec.to_dict(), default=str) + "\n")
        for name, value in tracer.counters.items():
            fh.write(json.dumps({"kind": "counter", "name": name, "value": value}) + "\n")
    return path


def export_chrome(path, tracer, *, bus=None, meta=None) -> str:
    """Write a Chrome/Perfetto ``trace_event`` JSON file; returns path."""
    events = []
    pid = 1
    for rec in tracer.spans:
        args = dict(rec.attrs) if rec.attrs else {}
        args["span_id"] = rec.id
        if rec.parent is not None:
            args["parent_id"] = rec.parent
        events.append(
            {
                "name": rec.name,
                "ph": "X",
                "ts": rec.t0_ns / 1000.0,
                "dur": rec.dur_ns / 1000.0,
                "pid": pid,
                "tid": 1,
                "cat": "host",
                "args": args,
            }
        )
    for ev in tracer.events:
        events.append(
            {
                "name": ev["name"],
                "ph": "i",
                "ts": ev["t_ns"] / 1000.0,
                "pid": pid,
                "tid": 1,
                "cat": "host",
                "s": "t",
                "args": ev.get("attrs", {}),
            }
        )
    if bus is not None:
        for rec in bus.all():
            events.append(
                {
                    "name": f"{rec.category}:{rec.name}",
                    "ph": "i",
                    "ts": 0.0,
                    "pid": pid,
                    "tid": 2,
                    "cat": "event",
                    "s": "t",
                    "args": {"seq": rec.seq, **{k: str(v) for k, v in rec.payload.items()}},
                }
            )
    for name, value in tracer.counters.items():
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": 0.0,
                "pid": pid,
                "tid": 1,
                "cat": "counter",
                "args": {"value": value},
            }
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}, dropped_spans=tracer.dropped),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path


def export_trace(path, tracer, *, bus=None, meta=None, fmt="jsonl") -> str:
    if fmt == "jsonl":
        return export_jsonl(path, tracer, bus=bus, meta=meta)
    if fmt == "chrome":
        return export_chrome(path, tracer, bus=bus, meta=meta)
    raise ValueError(f"unknown trace format {fmt!r}; choose jsonl | chrome")


def load_trace(path) -> dict:
    """Load either export format back into one normalized dict.

    Returns ``{"meta": dict, "spans": [dict], "events": [dict],
    "counters": {name: value}}`` with span dicts carrying
    ``id/parent/name/t0_ns/dur_ns/attrs``.
    """
    with open(path) as fh:
        first = fh.read(1)
        fh.seek(0)
        if first == "{" and _is_chrome(path):
            return _load_chrome(fh)
        return _load_jsonl(fh)


def _is_chrome(path) -> bool:
    with open(path) as fh:
        head = fh.read(4096)
    try:
        json.loads(head)
        # whole file fit in the head and parsed: decide by key
        return "traceEvents" in json.loads(head)
    except json.JSONDecodeError:
        return '"traceEvents"' in head


def _load_jsonl(fh) -> dict:
    meta, spans, events, counters = {}, [], [], {}
    for line in fh:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("kind")
        if kind == "meta":
            meta = rec
        elif kind == "span":
            rec.setdefault("attrs", {})
            spans.append(rec)
        elif kind in ("instant", "event"):
            events.append(rec)
        elif kind == "counter":
            counters[rec["name"]] = rec["value"]
    return {"meta": meta, "spans": spans, "events": events, "counters": counters}


def _load_chrome(fh) -> dict:
    doc = json.load(fh)
    meta = dict(doc.get("otherData", {}))
    meta["kind"] = "meta"
    spans, events, counters = [], [], {}
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "X":
            args = dict(ev.get("args", {}))
            sid = args.pop("span_id", None)
            parent = args.pop("parent_id", None)
            spans.append(
                {
                    "kind": "span",
                    "id": sid,
                    "parent": parent,
                    "name": ev["name"],
                    "t0_ns": int(ev["ts"] * 1000),
                    "dur_ns": int(ev.get("dur", 0) * 1000),
                    "attrs": args,
                }
            )
        elif ph == "i":
            events.append(
                {"kind": "instant", "name": ev["name"], "attrs": ev.get("args", {})}
            )
        elif ph == "C":
            counters[ev["name"]] = ev.get("args", {}).get("value")
    return {"meta": meta, "spans": spans, "events": events, "counters": counters}
