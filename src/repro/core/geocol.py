"""GeoCoL: the Geometry/Connectivity/Load partitioner-interface graph.

"Since the data structure that stores information on which data
partitioning is to be based can represent Geometrical, Connectivity
and/or Load information, we call this the GeoCoL data structure."
(Section 4.1.1.)

``construct_geocol`` is the runtime procedure the compiler emits for a
``CONSTRUCT`` directive (K1 in Figure 6): it assembles the standardized
representation from distributed program arrays -- coordinate arrays
(GEOMETRY), vertex weights (LOAD) and edge lists (LINK) -- and charges
the machine for the parallel graph generation the paper times as "Graph
Generation" in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dad import DAD
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine
from repro.partitioners.base import PartitionProblem

#: modeled integer ops per edge: normalize endpoints, bucket by owner,
#: insert into the distributed graph structure
GEOCOL_EDGE_IOPS = 30.0
#: modeled integer ops per vertex carrying geometry or load data
GEOCOL_VERTEX_IOPS = 6.0
#: wire bytes per edge shipped to the GeoCoL owner of its endpoint
GEOCOL_EDGE_BYTES = 8


@dataclass
class GeoCoL:
    """Assembled GeoCoL graph (global arrays) plus source DAD tracking.

    ``source_dads`` maps every program array that fed the construction to
    the DAD it had at construction time -- the same conservative machinery
    that guards schedules guards GeoCoL graphs ("We employ the same
    method to track possible changes to arrays used in the construction
    of the data structure produced at runtime to link partitioners with
    programs", Section 3).
    """

    name: str
    n_vertices: int
    geometry: np.ndarray | None = None
    load: np.ndarray | None = None
    edges: np.ndarray | None = None
    source_dads: dict[str, DAD] = field(default_factory=dict)
    source_last_mod: dict[str, int] = field(default_factory=dict)

    def to_problem(self) -> PartitionProblem:
        """The standardized partitioner input."""
        return PartitionProblem(
            n_vertices=self.n_vertices,
            edges=self.edges,
            coords=self.geometry,
            weights=self.load,
        )

    @property
    def n_edges(self) -> int:
        return 0 if self.edges is None else self.edges.shape[1]


def construct_geocol(
    machine: Machine,
    name: str,
    n_vertices: int,
    geometry: list[DistArray] | None = None,
    load: DistArray | None = None,
    link: tuple[DistArray, DistArray] | None = None,
) -> GeoCoL:
    """Build a GeoCoL graph from distributed program arrays.

    Mirrors the directive
    ``CONSTRUCT G (N, GEOMETRY(k, x1..xk), LOAD(w), LINK(E, e1, e2))``:
    any combination of the three information kinds is allowed, but at
    least one must be present.
    """
    if n_vertices < 0:
        raise ValueError(f"negative vertex count {n_vertices}")
    if geometry is None and load is None and link is None:
        raise ValueError(
            f"GeoCoL {name!r} needs at least one of GEOMETRY, LOAD, LINK"
        )

    source_dads: dict[str, DAD] = {}

    coords = None
    if geometry is not None:
        if not geometry:
            raise ValueError("GEOMETRY needs at least one coordinate array")
        for arr in geometry:
            if arr.size != n_vertices:
                raise ValueError(
                    f"coordinate array {arr.name!r} has size {arr.size}, "
                    f"GeoCoL {name!r} has {n_vertices} vertices"
                )
            source_dads[arr.name] = DAD.of(arr)
        coords = np.stack(
            [np.asarray(arr.global_view(), dtype=np.float64) for arr in geometry]
        )

    weights = None
    if load is not None:
        if load.size != n_vertices:
            raise ValueError(
                f"load array {load.name!r} has size {load.size}, GeoCoL "
                f"{name!r} has {n_vertices} vertices"
            )
        source_dads[load.name] = DAD.of(load)
        weights = load.to_global().astype(np.float64)

    edges = None
    if link is not None:
        e1, e2 = link
        if e1.size != e2.size:
            raise ValueError(
                f"edge lists {e1.name!r} and {e2.name!r} have different sizes"
            )
        source_dads[e1.name] = DAD.of(e1)
        source_dads[e2.name] = DAD.of(e2)
        edges = np.stack(
            [
                np.asarray(e1.global_view(), dtype=np.int64),
                np.asarray(e2.global_view(), dtype=np.int64),
            ]
        )
        if edges.size and (edges.min() < 0 or edges.max() >= n_vertices):
            raise ValueError(
                f"LINK endpoints must lie in [0, {n_vertices}) for GeoCoL {name!r}"
            )

    _charge_generation(machine, n_vertices, coords, weights, edges)
    return GeoCoL(
        name=name,
        n_vertices=n_vertices,
        geometry=coords,
        load=weights,
        edges=edges,
        source_dads=source_dads,
    )


def _charge_generation(machine, n_vertices, coords, weights, edges) -> None:
    """Model the parallel GeoCoL generation cost (Table 2 "Graph Generation").

    Edge records are bucketed by the (block-default) owner of their first
    endpoint and shipped there; vertex data is normalized in place.
    """
    n_procs = machine.n_procs
    per_vertex = 0.0
    if coords is not None:
        per_vertex += GEOCOL_VERTEX_IOPS * coords.shape[0]
    if weights is not None:
        per_vertex += GEOCOL_VERTEX_IOPS
    vchunk = -(-n_vertices // n_procs) if n_vertices else 0
    viops = [
        per_vertex * max(0, min(vchunk, n_vertices - p * vchunk))
        for p in range(n_procs)
    ]
    eiops = [0.0] * n_procs
    if edges is not None and edges.size:
        n_edges = edges.shape[1]
        echunk = -(-n_edges // n_procs)
        # edges start block-distributed over processors; each is examined
        # and shipped to the (block) owner of its first endpoint
        holder = np.arange(n_edges, dtype=np.int64) // echunk
        dest = np.minimum(edges[0] // max(vchunk, 1), n_procs - 1)
        counts = np.zeros((n_procs, n_procs), dtype=np.int64)
        np.add.at(counts, (holder, dest), 1)
        for p in range(n_procs):
            eiops[p] = GEOCOL_EDGE_IOPS * float(counts[p].sum())
        off_diag = counts.copy()
        np.fill_diagonal(off_diag, 0)
        ship_p, ship_q = np.nonzero(off_diag)
        machine.exchange(
            src=ship_p,
            dst=ship_q,
            nbytes=off_diag[ship_p, ship_q] * GEOCOL_EDGE_BYTES,
        )
    machine.charge_compute_all(iops=[v + e for v, e in zip(viops, eiops)])
    machine.barrier()
