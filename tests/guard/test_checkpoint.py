"""Checkpoint/restore: kill-halfway resume is bit-identical.

The reference run executes an adaptive campaign uninterrupted.  The
checkpointed run executes the first half, checkpoints, is discarded, and
a **fresh** program resumes from the file and executes the second half.
Machine counters, phase records, array contents, driver history and all
saved inspector state must match the reference bit for bit -- both at
the resume point and after continuing.
"""

import os
import pickle

import numpy as np
import pytest

from repro import AdaptiveExecutor
from repro.guard import (
    CheckpointError,
    load_checkpoint,
    previous_checkpoint_path,
    save_checkpoint,
)
from repro.machine import Machine
from repro.machine.stats import COUNTER_FIELDS
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_edge_loop, setup_euler_program

N_PROCS = 4


def build(n_procs=N_PROCS, incremental=True):
    mesh = generate_mesh(300, seed=4)
    machine = Machine(n_procs)
    prog = setup_euler_program(
        machine, mesh, seed=11, incremental=incremental, guard="cheap"
    )
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    return mesh, machine, prog


def mutate(prog, mesh, step):
    """Deterministic per-step mutation, derivable on either side of a
    resume (the current edge state lives in the program's arrays)."""
    rng = np.random.default_rng(1000 + step)
    pick = np.sort(rng.choice(mesh.n_edges, size=25, replace=False))
    e1 = np.asarray(prog.arrays["end_pt1"].global_view(), dtype=np.int64)
    new = (e1[pick] + 1 + rng.integers(0, mesh.n_nodes - 1, pick.size)) % mesh.n_nodes
    prog.set_array_elements("end_pt2", pick, new)


def drive(exe, mesh, steps, start=0):
    for step in range(start, start + steps):
        mutate(exe.program, mesh, step)
        exe.step()


def assert_machines_equal(m_a, m_b):
    for name in COUNTER_FIELDS:
        assert np.array_equal(
            getattr(m_a.counters, name), getattr(m_b.counters, name)
        ), name
    assert len(m_a.stats.phases) == len(m_b.stats.phases)
    for ra, rb in zip(m_a.stats.phases, m_b.stats.phases):
        assert ra.name == rb.name
        assert ra.elapsed == rb.elapsed
        for name in COUNTER_FIELDS:
            assert np.array_equal(
                getattr(ra.arrays, name), getattr(rb.arrays, name)
            ), (ra.name, name)


def assert_programs_equal(p_a, p_b):
    assert set(p_a.arrays) == set(p_b.arrays)
    for name in p_a.arrays:
        assert np.array_equal(
            p_a.arrays[name].to_global(), p_b.arrays[name].to_global()
        ), name
    assert p_a.registry.nmod == p_b.registry.nmod
    assert p_a.registry._last_mod == p_b.registry._last_mod
    assert p_a.inspector_runs == p_b.inspector_runs
    assert p_a.reuse_hits == p_b.reuse_hits
    assert p_a.patch_hits == p_b.patch_hits
    assert set(p_a.records) == set(p_b.records)
    for lname in p_a.records:
        ra, rb = p_a.records[lname], p_b.records[lname]
        assert ra.ind_last_mod == rb.ind_last_mod
        assert ra.data_dads == rb.data_dads
        assert ra.ind_dads == rb.ind_dads
        pa, pb = ra.product, rb.product
        fa, ba = pa.iteration_partition.iters_flat()
        fb, bb = pb.iteration_partition.iters_flat()
        assert np.array_equal(fa, fb) and np.array_equal(ba, bb)
        assert set(pa.patterns) == set(pb.patterns)
        for key in pa.patterns:
            la, lb = pa.patterns[key].localized, pb.patterns[key].localized
            assert np.array_equal(la.refs_flat, lb.refs_flat), key
            assert np.array_equal(la.ghost_flat, lb.ghost_flat), key
            sa, sb = la.schedule, lb.schedule
            assert np.array_equal(sa._pair_q, sb._pair_q), key
            assert np.array_equal(sa._flat_send, sb._flat_send), key
            assert np.array_equal(sa._flat_recv, sb._flat_recv), key
            assert np.array_equal(
                pa.patterns[key].ghosts.backing, pb.patterns[key].ghosts.backing
            ), key
    if p_a.adapt is not None:
        assert set(p_a.adapt.states) == set(p_b.adapt.states)
        for lname, sa in p_a.adapt.states.items():
            sb = p_b.adapt.states[lname]
            assert np.array_equal(sa.home, sb.home)
            assert set(sa.snapshots) == set(sb.snapshots)
            for n in sa.snapshots:
                assert np.array_equal(sa.snapshots[n], sb.snapshots[n])
            assert set(sa.groups) == set(sb.groups)
            for gkey, ga in sa.groups.items():
                gb = sb.groups[gkey]
                for f in ("slot_bounds", "keys", "owners", "lidx", "counts"):
                    assert np.array_equal(getattr(ga, f), getattr(gb, f)), (gkey, f)


def simulated_history(exe):
    """Driver history minus host-clock fields: wall timings are real
    elapsed time on the machine running the simulation, never
    bit-reproducible across runs.  Everything simulated must match."""
    return [
        {k: v for k, v in rec.items() if k != "inspect_wall_seconds"}
        for rec in exe.history
    ]


def test_resume_after_kill_is_bit_identical(tmp_path):
    path = tmp_path / "campaign.ckpt"
    half, rest = 3, 3

    # reference: uninterrupted run
    mesh, m_ref, p_ref = build()
    loop_ref = euler_edge_loop(mesh)
    exe_ref = AdaptiveExecutor(p_ref, loop_ref)
    drive(exe_ref, mesh, half + rest)

    # interrupted run: first half, checkpoint, "crash"
    mesh, m_a, p_a = build()
    loop_a = euler_edge_loop(mesh)
    exe_a = AdaptiveExecutor(p_a, loop_a)
    drive(exe_a, mesh, half)
    exe_a.checkpoint(path)
    del exe_a, p_a, m_a  # the crash

    # fresh program resumes from the file
    mesh, m_b, p_b = build()
    loop_b = euler_edge_loop(mesh)
    exe_b = AdaptiveExecutor.resume(path, p_b, loop_b)

    # the restored program continues exactly where the reference was
    # after `half` steps ... checked implicitly by the stronger claim:
    drive(exe_b, mesh, rest, start=half)
    assert_machines_equal(m_ref, m_b)
    assert_programs_equal(p_ref, p_b)
    assert simulated_history(exe_ref) == simulated_history(exe_b)
    assert exe_ref.mode_counts() == exe_b.mode_counts()
    # the campaign actually exercised the patch path on both sides
    assert exe_ref.mode_counts()["patch"] >= 1


def test_restore_alone_matches_checkpoint_moment(tmp_path):
    path = tmp_path / "campaign.ckpt"
    mesh, m_a, p_a = build()
    exe_a = AdaptiveExecutor(p_a, euler_edge_loop(mesh))
    drive(exe_a, mesh, 2)
    save_checkpoint(path, p_a, driver=exe_a)

    mesh, m_b, p_b = build()
    exe_b = AdaptiveExecutor.resume(path, p_b, euler_edge_loop(mesh))
    assert_machines_equal(m_a, m_b)
    assert_programs_equal(p_a, p_b)
    assert simulated_history(exe_a) == simulated_history(exe_b)


def test_run_with_checkpoint_every_writes_files(tmp_path):
    path = tmp_path / "periodic.ckpt"
    mesh, m, prog = build()
    exe = AdaptiveExecutor(prog, euler_edge_loop(mesh))
    modes = exe.run(3, checkpoint_every=2, checkpoint_path=path)
    assert len(modes) == 3
    assert path.exists()
    payload = load_checkpoint(path)
    # written after step 2, not after step 3
    assert len(payload["driver"]["history"]) == 2

    with pytest.raises(ValueError, match="checkpoint_every"):
        exe.run(1, checkpoint_every=0, checkpoint_path=path)
    with pytest.raises(ValueError, match="checkpoint_path"):
        exe.run(1, checkpoint_every=1)


class TestRejectsDamage:
    def make(self, tmp_path):
        path = tmp_path / "c.ckpt"
        mesh, m, prog = build()
        exe = AdaptiveExecutor(prog, euler_edge_loop(mesh))
        drive(exe, mesh, 1)
        save_checkpoint(path, prog, driver=exe)
        return path, mesh

    def test_corrupted_payload(self, tmp_path):
        path, _ = self.make(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_file(self, tmp_path):
        path, _ = self.make(tmp_path)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_version_mismatch(self, tmp_path):
        path, _ = self.make(tmp_path)
        env = pickle.loads(path.read_bytes())
        env["version"] = 999
        path.write_bytes(pickle.dumps(env))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_wrong_machine_size(self, tmp_path):
        path, mesh = self.make(tmp_path)
        _, _, prog = build(n_procs=8)
        with pytest.raises(CheckpointError, match="processors"):
            AdaptiveExecutor.resume(path, prog, euler_edge_loop(mesh))

    def test_distribution_mismatch(self, tmp_path):
        path, mesh = self.make(tmp_path)
        # fresh program without the RCB redistribute: node arrays are
        # still block-distributed -- signature mismatch, nothing mutated
        machine = Machine(N_PROCS)
        prog = setup_euler_program(
            machine, mesh, seed=11, incremental=True, guard="cheap"
        )
        prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
        prog.set_distribution("fmt", "G", "RCB")
        x_before = prog.arrays["x"].to_global().copy()
        with pytest.raises(CheckpointError, match="distribution"):
            AdaptiveExecutor.resume(path, prog, euler_edge_loop(mesh))
        assert np.array_equal(prog.arrays["x"].to_global(), x_before)

    def test_missing_loop_binding(self, tmp_path):
        from repro.guard import restore_checkpoint

        path, mesh = self.make(tmp_path)
        _, _, prog = build()
        with pytest.raises(CheckpointError, match="loops mapping"):
            restore_checkpoint(path, prog, loops={})

    def test_incremental_state_needs_incremental_program(self, tmp_path):
        path, mesh = self.make(tmp_path)
        _, _, prog = build(incremental=False)
        with pytest.raises(CheckpointError, match="incremental"):
            AdaptiveExecutor.resume(path, prog, euler_edge_loop(mesh))


class TestCrashSafeSave:
    """save_checkpoint survives torn writes and rotates the previous
    good file to ``<path>.prev``; resume falls back to it when the
    primary is damaged."""

    def drive_and_save(self, tmp_path, steps=(2, 4)):
        """One campaign saving to the same path after each step count."""
        path = tmp_path / "rotating.ckpt"
        mesh, m, prog = build()
        exe = AdaptiveExecutor(prog, euler_edge_loop(mesh))
        done = 0
        for upto in steps:
            drive(exe, mesh, upto - done, start=done)
            done = upto
            exe.checkpoint(path)
        return path, mesh, exe

    def test_rotation_keeps_previous_checkpoint(self, tmp_path):
        path, mesh, exe = self.drive_and_save(tmp_path)
        prev = previous_checkpoint_path(path)
        assert os.path.exists(prev)
        # primary is the newest save, .prev the one before it
        assert len(load_checkpoint(path)["driver"]["history"]) == 4
        assert len(load_checkpoint(prev)["driver"]["history"]) == 2

    def test_no_tmp_litter(self, tmp_path):
        path, _, _ = self.drive_and_save(tmp_path)
        leftovers = [n for n in os.listdir(tmp_path) if ".tmp" in n]
        assert leftovers == []

    def test_resume_falls_back_to_prev_on_corruption(self, tmp_path):
        path, mesh, exe_a = self.drive_and_save(tmp_path)
        # the crash damages the newest checkpoint mid-write
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

        mesh, m_b, p_b = build()
        exe_b = AdaptiveExecutor.resume(path, p_b, euler_edge_loop(mesh))
        assert exe_b.resumed_from == "prev"
        # resumed at step 2 (the .prev save), not step 4
        assert len(exe_b.history) == 2

        # and the fallback resume is still bit-identical: continue to
        # step 4 and compare against a clean uninterrupted run
        drive(exe_b, mesh, 2, start=2)
        mesh, m_ref, p_ref = build()
        exe_ref = AdaptiveExecutor(p_ref, euler_edge_loop(mesh))
        drive(exe_ref, mesh, 4)
        assert_machines_equal(m_ref, m_b)
        assert_programs_equal(p_ref, p_b)

    def test_resume_prefers_intact_primary(self, tmp_path):
        path, mesh, _ = self.drive_and_save(tmp_path)
        mesh, _, p_b = build()
        exe_b = AdaptiveExecutor.resume(path, p_b, euler_edge_loop(mesh))
        assert exe_b.resumed_from == "primary"
        assert len(exe_b.history) == 4

    def test_both_damaged_raises(self, tmp_path):
        path, mesh, _ = self.drive_and_save(tmp_path)
        for p in (path, previous_checkpoint_path(path)):
            raw = bytearray(open(p, "rb").read())
            raw[len(raw) // 2] ^= 0xFF
            open(p, "wb").write(bytes(raw))
        _, _, p_b = build()
        with pytest.raises(CheckpointError):
            AdaptiveExecutor.resume(path, p_b, euler_edge_loop(mesh))

    def test_corrupt_primary_without_prev_raises(self, tmp_path):
        path = tmp_path / "single.ckpt"
        mesh, _, prog = build()
        exe = AdaptiveExecutor(prog, euler_edge_loop(mesh))
        drive(exe, mesh, 1)
        exe.checkpoint(path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        _, _, p_b = build()
        with pytest.raises(CheckpointError):
            AdaptiveExecutor.resume(path, p_b, euler_edge_loop(mesh))

    def test_semantic_mismatch_does_not_fall_back(self, tmp_path):
        """Only *damage* (unreadable envelope) triggers the .prev
        fallback; a valid checkpoint that doesn't fit the program is a
        real error even when an older file exists."""
        path, mesh, _ = self.drive_and_save(tmp_path)
        _, _, prog = build(n_procs=8)
        with pytest.raises(CheckpointError, match="processors"):
            AdaptiveExecutor.resume(path, prog, euler_edge_loop(mesh))
