"""Flat-backed DistArray vs the historical per-processor-list semantics.

The seed ``DistArray`` kept one ndarray per virtual processor; PR 3
replaced that with one contiguous backing array plus CSR offsets and a
content-version counter.  These tests keep the old list implementation
as a reference oracle and check, over randomized distributions, that the
flat form is observably identical across ``from_global`` / ``rebind`` /
remap / localize / executor round-trips — and that the version counter
invalidates the cached global view on *every* mutation path, including
writes through retained ``local(p)`` views.
"""

import numpy as np
import pytest

from repro.chaos.buffers import GhostBuffers
from repro.chaos.localize import FlatRefs, localize
from repro.chaos.remap import build_remap_schedule
from repro.chaos.ttable import build_translation_table
from repro.core import ArrayRef, ForallLoop, Reduce, run_executor, run_inspector
from repro.distribution import (
    BlockDistribution,
    CyclicDistribution,
    DistArray,
    IrregularDistribution,
)
from repro.machine.machine import Machine


# ----------------------------------------------------------------------
# reference oracle: the seed's per-processor-list implementation
# ----------------------------------------------------------------------
class ListDistArray:
    """Historical DistArray semantics: one ndarray per processor."""

    def __init__(self, machine, distribution, values):
        values = np.asarray(values)
        self.machine = machine
        self.distribution = distribution
        self.dtype = values.dtype
        self._local = [
            np.ascontiguousarray(values[distribution.local_indices(p)])
            for p in range(machine.n_procs)
        ]

    def local(self, p):
        return self._local[p]

    def to_global(self):
        out = np.empty(self.distribution.size, dtype=self.dtype)
        for p in range(self.machine.n_procs):
            out[self.distribution.local_indices(p)] = self._local[p]
        return out

    def global_get(self, gidx):
        g = np.asarray(gidx, dtype=np.int64)
        owners = np.asarray(self.distribution.owner(g))
        lidx = np.asarray(self.distribution.local_index(g))
        out = np.empty(g.shape, dtype=self.dtype)
        for p in np.unique(owners):
            sel = owners == p
            out[sel] = self._local[int(p)][lidx[sel]]
        return out

    def global_set(self, gidx, values):
        g = np.asarray(gidx, dtype=np.int64)
        vals = np.broadcast_to(np.asarray(values, dtype=self.dtype), g.shape)
        owners = np.asarray(self.distribution.owner(g))
        lidx = np.asarray(self.distribution.local_index(g))
        for p in np.unique(owners):
            sel = owners == p
            self._local[int(p)][lidx[sel]] = vals[sel]

    def rebind(self, distribution, new_locals):
        self.distribution = distribution
        self._local = [
            np.ascontiguousarray(seg, dtype=self.dtype) for seg in new_locals
        ]


def random_dist(rng, size, n_procs):
    kind = rng.choice(["block", "cyclic", "irregular"])
    if kind == "block":
        return BlockDistribution(size, n_procs)
    if kind == "cyclic":
        return CyclicDistribution(size, n_procs)
    return IrregularDistribution(rng.integers(0, n_procs, size=size), n_procs)


def assert_same_state(flat: DistArray, ref: ListDistArray):
    for p in range(flat.machine.n_procs):
        np.testing.assert_array_equal(flat.local(p), ref.local(p))
    np.testing.assert_array_equal(flat.to_global(), ref.to_global())


# ----------------------------------------------------------------------
# randomized oracle equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_from_global_and_accessors_match_list_oracle(seed):
    rng = np.random.default_rng(seed)
    n_procs = int(rng.choice([1, 2, 4, 8]))
    size = int(rng.integers(0, 40))
    dist = random_dist(rng, size, n_procs)
    vals = rng.normal(size=size)
    m = Machine(n_procs)
    flat = DistArray.from_global(m, dist, vals)
    ref = ListDistArray(m, dist, vals)
    assert_same_state(flat, ref)
    if size:
        g = rng.integers(0, size, size=int(rng.integers(1, 20)))
        np.testing.assert_array_equal(flat.global_get(g), ref.global_get(g))
        wv = rng.normal(size=g.size)
        flat.global_set(g, wv)
        ref.global_set(g, wv)
        assert_same_state(flat, ref)


@pytest.mark.parametrize("seed", range(6))
def test_rebind_and_remap_match_list_oracle(seed):
    rng = np.random.default_rng(100 + seed)
    n_procs = int(rng.choice([2, 4, 8]))
    size = int(rng.integers(1, 60))
    old = random_dist(rng, size, n_procs)
    new = random_dist(rng, size, n_procs)
    vals = rng.normal(size=size)
    m = Machine(n_procs)
    flat = DistArray.from_global(m, old, vals)
    ref = ListDistArray(m, old, vals)

    # explicit rebind with per-processor segments (the list-era API)
    segs = [vals[new.local_indices(p)] for p in range(n_procs)]
    flat.rebind(new, segs)
    ref.rebind(new, segs)
    assert_same_state(flat, ref)
    np.testing.assert_array_equal(flat.to_global(), vals)

    # full remap back through the CHAOS schedule
    sched = build_remap_schedule(m, new, old)
    sched.apply(flat)
    ref.rebind(old, [vals[old.local_indices(p)] for p in range(n_procs)])
    assert_same_state(flat, ref)


@pytest.mark.parametrize("seed", range(4))
def test_localize_round_trip_matches_list_oracle(seed):
    """Localized refs + gathered ghosts reconstruct the referenced values."""
    rng = np.random.default_rng(200 + seed)
    n_procs = int(rng.choice([2, 4]))
    size = int(rng.integers(4, 40))
    dist = random_dist(rng, size, n_procs)
    vals = rng.normal(size=size)
    m = Machine(n_procs)
    arr = DistArray.from_global(m, dist, vals)
    ref = ListDistArray(m, dist, vals)

    ref_lists = [
        rng.integers(0, size, size=int(rng.integers(0, 15)))
        for _ in range(n_procs)
    ]
    tt = build_translation_table(m, dist)
    res = localize(m, tt, FlatRefs.from_lists(ref_lists))
    ghosts = GhostBuffers(m, res.schedule, dtype=arr.dtype)
    res.schedule.gather(arr, ghosts.buffers)
    for p in range(n_procs):
        combined = np.concatenate([ref.local(p), ghosts.buf(p)])
        np.testing.assert_array_equal(
            combined[res.local_refs[p]], vals[ref_lists[p]]
        )


@pytest.mark.parametrize("seed", range(3))
def test_executor_round_trip_matches_sequential(seed):
    """L2-style edge sweep through inspector+executor == sequential NumPy."""
    rng = np.random.default_rng(300 + seed)
    n_procs = int(rng.choice([2, 4]))
    n_data = int(rng.integers(8, 24))
    n_iter = int(rng.integers(8, 30))
    m = Machine(n_procs)
    dist = random_dist(rng, n_data, n_procs)
    idist = BlockDistribution(n_iter, n_procs)
    arrays = {
        "x": DistArray.from_global(m, dist, rng.normal(size=n_data), name="x"),
        "y": DistArray.from_global(m, dist, rng.normal(size=n_data), name="y"),
        "ia": DistArray.from_global(
            m, idist, rng.integers(0, n_data, n_iter), name="ia"
        ),
        "ib": DistArray.from_global(
            m, idist, rng.integers(0, n_data, n_iter), name="ib"
        ),
    }
    x1, x2 = ArrayRef("x", "ia"), ArrayRef("x", "ib")
    loop = ForallLoop(
        "L2",
        n_iter,
        [
            Reduce("add", ArrayRef("y", "ia"), lambda a, b: a * b, (x1, x2), flops=2),
            Reduce("add", ArrayRef("y", "ib"), lambda a, b: a - b, (x1, x2), flops=2),
        ],
    )
    x = arrays["x"].to_global()
    want = arrays["y"].to_global()
    ia = arrays["ia"].to_global()
    ib = arrays["ib"].to_global()
    np.add.at(want, ia, x[ia] * x[ib])
    np.add.at(want, ib, x[ia] - x[ib])

    product = run_inspector(m, loop, arrays)
    run_executor(m, product, arrays)
    np.testing.assert_allclose(arrays["y"].to_global(), want)


# ----------------------------------------------------------------------
# version counter / cached global view invalidation
# ----------------------------------------------------------------------
@pytest.fixture
def m4():
    return Machine(4)


def make_arr(m, kind="cyclic"):
    dist = (
        CyclicDistribution(12, 4)
        if kind == "cyclic"
        else BlockDistribution(12, 4)
    )
    return DistArray.from_global(m, dist, np.arange(12.0))


class TestGlobalViewCache:
    def test_reads_do_not_bump_and_cache_is_reused(self, m4):
        arr = make_arr(m4)
        v0 = arr.version
        gv = arr.global_view()
        assert arr.global_view() is gv  # cache hit, same object
        arr.to_global()
        arr.global_get([3, 5])
        arr.local_ro(1)
        arr.backing_ro
        assert arr.version == v0
        assert arr.global_view() is gv

    def test_global_view_is_read_only_and_to_global_is_writable(self, m4):
        arr = make_arr(m4)
        gv = arr.global_view()
        with pytest.raises((ValueError, RuntimeError)):
            gv[0] = 99.0
        g = arr.to_global()
        g[0] = 99.0  # fresh copy, must be writable
        assert arr.global_view()[0] != 99.0

    def test_local_ro_rejects_writes(self, m4):
        arr = make_arr(m4)
        with pytest.raises((ValueError, RuntimeError)):
            arr.local_ro(0)[0] = 1.0

    def test_global_set_invalidates(self, m4):
        arr = make_arr(m4)
        gv = arr.global_view()
        v0 = arr.version
        arr.global_set([7], [99.0])
        assert arr.version > v0
        assert arr.global_view() is not gv
        assert arr.to_global()[7] == 99.0

    def test_set_global_invalidates(self, m4):
        arr = make_arr(m4)
        arr.global_view()
        v0 = arr.version
        arr.set_global(np.full(12, 5.0))
        assert arr.version > v0
        assert arr.to_global().tolist() == [5.0] * 12

    def test_rebind_invalidates(self, m4):
        arr = make_arr(m4)
        vals = arr.to_global()
        v0 = arr.version
        new = BlockDistribution(12, 4)
        arr.rebind(new, [vals[new.local_indices(p)] for p in range(4)])
        assert arr.version > v0
        np.testing.assert_array_equal(arr.to_global(), vals)

    def test_remap_apply_invalidates(self, m4):
        arr = make_arr(m4)
        vals = arr.to_global()
        arr.global_view()
        v0 = arr.version
        sched = build_remap_schedule(m4, arr.distribution, BlockDistribution(12, 4))
        sched.apply(arr)
        assert arr.version > v0
        np.testing.assert_array_equal(arr.to_global(), vals)

    def test_backing_mut_invalidates(self, m4):
        arr = make_arr(m4)
        arr.global_view()
        v0 = arr.version
        data = arr.backing_mut()
        data[:] = 0.0
        assert arr.version > v0
        assert arr.to_global().tolist() == [0.0] * 12


class TestLocalViewWriteBarrier:
    def test_indexed_assignment_bumps(self, m4):
        arr = make_arr(m4)
        v0 = arr.version
        arr.local(0)[:] = 5.0
        assert arr.version > v0
        assert arr.to_global()[0] == 5.0  # cyclic: proc 0 owns g=0

    def test_retained_view_written_after_cache_fill(self, m4):
        arr = make_arr(m4)
        view = arr.local(1)
        before = arr.to_global()  # fills the cache *after* view handout
        view[0] = 123.0  # write through the retained view
        after = arr.to_global()
        assert after[1] == 123.0  # cyclic: proc 1, offset 0 -> g=1
        assert before[1] != 123.0

    def test_derived_view_write_bumps(self, m4):
        arr = make_arr(m4)
        arr.global_view()
        v0 = arr.version
        arr.local(0)[1:3][0] = 77.0
        assert arr.version > v0
        assert arr.to_global()[4] == 77.0  # cyclic: proc 0, offset 1 -> g=4

    def test_inplace_operator_bumps(self, m4):
        arr = make_arr(m4)
        view = arr.local(2)
        arr.global_view()
        v0 = arr.version
        view += 1.0
        assert arr.version > v0
        assert arr.to_global()[2] == 3.0  # g=2 held 2.0

    def test_ufunc_out_bumps(self, m4):
        arr = make_arr(m4)
        view = arr.local(0)
        v0 = arr.version
        np.negative(view, out=view)
        assert arr.version > v0
        assert arr.to_global()[4] == -4.0

    def test_ufunc_at_bumps(self, m4):
        arr = make_arr(m4)
        view = arr.local(3)
        arr.global_view()
        v0 = arr.version
        np.add.at(view, [0, 0], 10.0)
        assert arr.version > v0
        assert arr.to_global()[3] == 23.0  # g=3 held 3.0, +10 twice

    def test_reads_through_views_do_not_bump(self, m4):
        arr = make_arr(m4)
        view = arr.local(0)
        v0 = arr.version
        _ = view + 1.0
        _ = view.sum()
        _ = view[1:]
        _ = np.asarray(view)
        assert arr.version == v0


class TestExecutorInvalidation:
    def test_executor_write_invalidates_target_only(self, m4):
        rng = np.random.default_rng(7)
        dist = BlockDistribution(16, 4)
        idist = BlockDistribution(16, 4)
        arrays = {
            "x": DistArray.from_global(m4, dist, rng.normal(size=16), name="x"),
            "y": DistArray.from_global(m4, dist, np.zeros(16), name="y"),
            "ia": DistArray.from_global(
                m4, idist, rng.permutation(16), name="ia"
            ),
        }
        loop = ForallLoop(
            "L1",
            16,
            [
                Reduce(
                    "add",
                    ArrayRef("y", "ia"),
                    lambda a: 2.0 * a,
                    (ArrayRef("x", "ia"),),
                    flops=1,
                )
            ],
        )
        product = run_inspector(m4, loop, arrays)
        y_before = arrays["y"].version
        ia_view = arrays["ia"].global_view()
        run_executor(m4, product, arrays)
        assert arrays["y"].version > y_before
        # indirection array was only read: its cached view must survive
        assert arrays["ia"].global_view() is ia_view
        x = arrays["x"].to_global()
        ia = arrays["ia"].to_global()
        want = np.zeros(16)
        np.add.at(want, ia, 2.0 * x[ia])
        np.testing.assert_allclose(arrays["y"].to_global(), want)
