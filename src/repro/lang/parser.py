"""Recursive-descent parser for the directive dialect.

One statement per line; FORALL/DO blocks bracketed by END FORALL/END DO.
Grammar sketch::

    program      := { statement NEWLINE }
    statement    := typedecl | decompdecl | distribute | align
                  | construct | set | redistribute | forall | do
    typedecl     := TYPE name '(' expr ')' { ',' name '(' expr ')' }
    decompdecl   := [DYNAMIC ','] DECOMPOSITION namesize { ',' namesize }
    distribute   := DISTRIBUTE name '(' IDENT ')' { ',' ... }
    align        := ALIGN name { ',' name } WITH name
    construct    := CONSTRUCT name '(' expr { ',' clause } ')'
    clause       := GEOMETRY '(' NUMBER ',' names ')'
                  | LOAD '(' name ')'
                  | LINK '(' expr ',' name ',' name ')'
    set          := SET name BY PARTITIONING name USING pname
    redistribute := REDISTRIBUTE name '(' name ')'
    forall       := FORALL name '=' expr ',' expr NEWLINE body END FORALL
    body stmt    := REDUCE '(' op ',' aref ',' expr ')' | aref '=' expr
    expr         := standard precedence climbing over + - * / ** calls
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    AlignStmt,
    ArrayIndex,
    AssignStmt,
    BinOp,
    Call,
    ConstructStmt,
    DecompositionDecl,
    DistributeStmt,
    DoStmt,
    ForallStmt,
    Num,
    ProgramAST,
    RedistributeStmt,
    ReduceStmt,
    SetStmt,
    TypeDecl,
    UnOp,
    Var,
)
from repro.lang.tokens import Token, TokenKind, tokenize

_TYPE_KEYWORDS = {"REAL", "REAL*4", "REAL*8", "INTEGER", "DOUBLE"}
_REDUCE_OPS = {"ADD", "MULTIPLY", "MIN", "MAX"}
_INTRINSICS = {"SQRT", "EXP", "LOG", "SIN", "COS", "ABS", "MIN", "MAX", "MOD"}


class ParseError(SyntaxError):
    """Raised with line information on any syntax violation."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def error(self, msg: str, tok: Token | None = None) -> ParseError:
        tok = tok or self.peek()
        return ParseError(f"line {tok.line}: {msg} (near {tok.text!r})")

    def expect_op(self, text: str) -> Token:
        tok = self.next()
        if tok.kind != TokenKind.OP or tok.text != text:
            raise self.error(f"expected {text!r}", tok)
        return tok

    def expect_ident(self, *texts: str) -> Token:
        tok = self.next()
        if tok.kind != TokenKind.IDENT:
            raise self.error("expected an identifier", tok)
        if texts and tok.text not in texts:
            raise self.error(f"expected one of {texts}", tok)
        return tok

    def expect_newline(self) -> None:
        tok = self.next()
        if tok.kind not in (TokenKind.NEWLINE, TokenKind.EOF):
            raise self.error("expected end of statement", tok)

    def skip_newlines(self) -> None:
        while self.peek().kind == TokenKind.NEWLINE:
            self.next()

    def at_ident(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind == TokenKind.IDENT and tok.text == text

    # -- program ------------------------------------------------------------
    def parse_program(self) -> ProgramAST:
        prog = ProgramAST()
        self.skip_newlines()
        while self.peek().kind != TokenKind.EOF:
            prog.statements.append(self.parse_statement())
            self.skip_newlines()
        return prog

    def parse_statement(self):
        tok = self.peek()
        if tok.kind != TokenKind.IDENT:
            raise self.error("expected a statement keyword")
        kw = tok.text
        if kw in _TYPE_KEYWORDS:
            return self.parse_typedecl()
        if kw in ("DYNAMIC", "DECOMPOSITION"):
            return self.parse_decomposition()
        if kw == "DISTRIBUTE":
            return self.parse_distribute()
        if kw == "ALIGN":
            return self.parse_align()
        if kw == "CONSTRUCT":
            return self.parse_construct()
        if kw == "SET":
            return self.parse_set()
        if kw == "REDISTRIBUTE":
            return self.parse_redistribute()
        if kw == "FORALL":
            return self.parse_forall()
        if kw == "DO":
            return self.parse_do()
        raise self.error(f"unknown statement {kw!r}")

    # -- declarations ---------------------------------------------------------
    def _name_size_list(self) -> list[tuple[str, object]]:
        out = []
        while True:
            name = self.expect_ident().text
            self.expect_op("(")
            size = self.parse_expr()
            self.expect_op(")")
            out.append((name, size))
            if self.peek().kind == TokenKind.OP and self.peek().text == ",":
                self.next()
                continue
            break
        return out

    def parse_typedecl(self) -> TypeDecl:
        tok = self.next()
        type_name = tok.text
        arrays = self._name_size_list()
        self.expect_newline()
        return TypeDecl(type_name=type_name, arrays=arrays, line=tok.line)

    def parse_decomposition(self) -> DecompositionDecl:
        tok = self.peek()
        dynamic = False
        if self.at_ident("DYNAMIC"):
            self.next()
            dynamic = True
            if self.peek().kind == TokenKind.OP and self.peek().text == ",":
                self.next()
        self.expect_ident("DECOMPOSITION")
        decomps = self._name_size_list()
        self.expect_newline()
        return DecompositionDecl(decomps=decomps, dynamic=dynamic, line=tok.line)

    def parse_distribute(self) -> DistributeStmt:
        tok = self.expect_ident("DISTRIBUTE")
        targets = []
        while True:
            name = self.expect_ident().text
            self.expect_op("(")
            fmt = self.expect_ident().text
            self.expect_op(")")
            targets.append((name, fmt))
            if self.peek().kind == TokenKind.OP and self.peek().text == ",":
                self.next()
                continue
            break
        self.expect_newline()
        return DistributeStmt(targets=targets, line=tok.line)

    def parse_align(self) -> AlignStmt:
        tok = self.expect_ident("ALIGN")
        arrays = [self.expect_ident().text]
        while self.peek().kind == TokenKind.OP and self.peek().text == ",":
            self.next()
            arrays.append(self.expect_ident().text)
        self.expect_ident("WITH")
        decomp = self.expect_ident().text
        self.expect_newline()
        return AlignStmt(arrays=arrays, decomp=decomp, line=tok.line)

    # -- directives -------------------------------------------------------------
    def parse_construct(self) -> ConstructStmt:
        tok = self.expect_ident("CONSTRUCT")
        name = self.expect_ident().text
        self.expect_op("(")
        n_vertices = self.parse_expr()
        stmt = ConstructStmt(name=name, n_vertices=n_vertices, line=tok.line)
        while self.peek().kind == TokenKind.OP and self.peek().text == ",":
            self.next()
            clause = self.expect_ident("GEOMETRY", "LOAD", "LINK").text
            self.expect_op("(")
            if clause == "GEOMETRY":
                ndim_tok = self.next()
                if ndim_tok.kind != TokenKind.NUMBER:
                    raise self.error("GEOMETRY needs a dimension count", ndim_tok)
                ndim = int(float(ndim_tok.text))
                names = []
                for _ in range(ndim):
                    self.expect_op(",")
                    names.append(self.expect_ident().text)
                if stmt.geometry is not None:
                    raise self.error("duplicate GEOMETRY clause", ndim_tok)
                stmt.geometry = names
            elif clause == "LOAD":
                if stmt.load is not None:
                    raise self.error("duplicate LOAD clause")
                stmt.load = self.expect_ident().text
            else:  # LINK
                if stmt.link is not None:
                    raise self.error("duplicate LINK clause")
                stmt.link_count = self.parse_expr()
                self.expect_op(",")
                e1 = self.expect_ident().text
                self.expect_op(",")
                e2 = self.expect_ident().text
                stmt.link = (e1, e2)
            self.expect_op(")")
        self.expect_op(")")
        self.expect_newline()
        return stmt

    def parse_set(self) -> SetStmt:
        tok = self.expect_ident("SET")
        target = self.expect_ident().text
        self.expect_ident("BY")
        self.expect_ident("PARTITIONING")
        geocol = self.expect_ident().text
        self.expect_ident("USING")
        pname = self.expect_ident().text
        # allow RSB+KL style names
        while self.peek().kind == TokenKind.OP and self.peek().text in "+-":
            op = self.next().text
            pname += op + self.expect_ident().text
        self.expect_newline()
        return SetStmt(target=target, geocol=geocol, partitioner=pname, line=tok.line)

    def parse_redistribute(self) -> RedistributeStmt:
        tok = self.expect_ident("REDISTRIBUTE")
        decomp = self.expect_ident().text
        self.expect_op("(")
        fmt = self.expect_ident().text
        self.expect_op(")")
        self.expect_newline()
        return RedistributeStmt(decomp=decomp, fmt=fmt, line=tok.line)

    # -- loops --------------------------------------------------------------
    def _loop_header(self) -> tuple[str, object, object]:
        var = self.expect_ident().text
        self.expect_op("=")
        lo = self.parse_expr()
        self.expect_op(",")
        hi = self.parse_expr()
        self.expect_newline()
        return var, lo, hi

    def parse_forall(self) -> ForallStmt:
        tok = self.expect_ident("FORALL")
        var, lo, hi = self._loop_header()
        stmt = ForallStmt(var=var, lo=lo, hi=hi, line=tok.line)
        self.skip_newlines()
        while not (self.at_ident("END")):
            stmt.body.append(self.parse_forall_body_stmt())
            self.skip_newlines()
        self.expect_ident("END")
        self.expect_ident("FORALL")
        self.expect_newline()
        if not stmt.body:
            raise ParseError(f"line {tok.line}: empty FORALL body")
        return stmt

    def parse_forall_body_stmt(self):
        if self.at_ident("REDUCE"):
            tok = self.next()
            self.expect_op("(")
            op = self.expect_ident(*_REDUCE_OPS).text
            self.expect_op(",")
            lhs = self.parse_primary()
            if not isinstance(lhs, ArrayIndex):
                raise self.error("REDUCE target must be an array reference", tok)
            self.expect_op(",")
            expr = self.parse_expr()
            self.expect_op(")")
            self.expect_newline()
            return ReduceStmt(op=op, lhs=lhs, expr=expr, line=tok.line)
        tok = self.peek()
        lhs = self.parse_primary()
        if not isinstance(lhs, ArrayIndex):
            raise self.error("assignment target must be an array reference", tok)
        self.expect_op("=")
        expr = self.parse_expr()
        self.expect_newline()
        return AssignStmt(lhs=lhs, expr=expr, line=tok.line)

    def parse_do(self) -> DoStmt:
        tok = self.expect_ident("DO")
        var, lo, hi = self._loop_header()
        stmt = DoStmt(var=var, lo=lo, hi=hi, line=tok.line)
        self.skip_newlines()
        while not self.at_ident("END"):
            stmt.body.append(self.parse_statement())
            self.skip_newlines()
        self.expect_ident("END")
        self.expect_ident("DO")
        self.expect_newline()
        return stmt

    # -- expressions -----------------------------------------------------------
    def parse_expr(self):
        return self.parse_additive()

    def parse_additive(self):
        node = self.parse_term()
        while self.peek().kind == TokenKind.OP and self.peek().text in "+-":
            op = self.next().text
            node = BinOp(op=op, left=node, right=self.parse_term())
        return node

    def parse_term(self):
        node = self.parse_power()
        while self.peek().kind == TokenKind.OP and self.peek().text in "*/":
            op = self.next().text
            node = BinOp(op=op, left=node, right=self.parse_power())
        return node

    def parse_power(self):
        node = self.parse_unary()
        if self.peek().kind == TokenKind.OP and self.peek().text == "**":
            self.next()
            return BinOp(op="**", left=node, right=self.parse_power())
        return node

    def parse_unary(self):
        if self.peek().kind == TokenKind.OP and self.peek().text == "-":
            self.next()
            return UnOp(op="-", operand=self.parse_unary())
        if self.peek().kind == TokenKind.OP and self.peek().text == "+":
            self.next()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self):
        tok = self.next()
        if tok.kind == TokenKind.NUMBER:
            return Num(value=float(tok.text.lower().replace("d", "e")))
        if tok.kind == TokenKind.OP and tok.text == "(":
            node = self.parse_expr()
            self.expect_op(")")
            return node
        if tok.kind != TokenKind.IDENT:
            raise self.error("expected an expression", tok)
        name = tok.text
        if self.peek().kind == TokenKind.OP and self.peek().text == "(":
            self.next()
            args = [self.parse_expr()]
            while self.peek().kind == TokenKind.OP and self.peek().text == ",":
                self.next()
                args.append(self.parse_expr())
            self.expect_op(")")
            if name in _INTRINSICS:
                return Call(func=name, args=tuple(args))
            if len(args) != 1:
                raise self.error(
                    f"array reference {name} takes one subscript", tok
                )
            return ArrayIndex(name=name, index=args[0])
        return Var(name=name)


def parse(source: str) -> ProgramAST:
    """Parse directive-dialect source into a ProgramAST."""
    return _Parser(tokenize(source)).parse_program()
