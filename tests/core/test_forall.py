"""Tests for FORALL loop specifications."""

import pytest

from repro.core import ArrayRef, Assign, ForallLoop, Reduce


def f(*args):
    return args[0]


class TestArrayRef:
    def test_direct_vs_indirect(self):
        assert ArrayRef("x").index is None
        assert ArrayRef("x", "ia").index == "ia"


class TestStatements:
    def test_reduce_validates_op(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            Reduce("xor", ArrayRef("y", "ia"), f, (ArrayRef("x", "ib"),))

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError, match="flops"):
            Assign(ArrayRef("y", "ia"), f, (ArrayRef("x", "ib"),), flops=-1)

    def test_reads_coerced_to_tuple(self):
        s = Assign(ArrayRef("y", "ia"), f, [ArrayRef("x", "ib")])
        assert isinstance(s.reads, tuple)


class TestForallLoop:
    def make_l2(self):
        """The paper's loop L2: edge sweep with two reductions."""
        x1, x2 = ArrayRef("x", "end_pt1"), ArrayRef("x", "end_pt2")
        return ForallLoop(
            "L2",
            100,
            [
                Reduce("add", ArrayRef("y", "end_pt1"), lambda a, b: a * b, (x1, x2)),
                Reduce("add", ArrayRef("y", "end_pt2"), lambda a, b: a + b, (x1, x2)),
            ],
        )

    def test_data_arrays(self):
        loop = self.make_l2()
        assert loop.data_arrays() == ["x", "y"]

    def test_indirection_arrays(self):
        loop = self.make_l2()
        assert loop.indirection_arrays() == ["end_pt1", "end_pt2"]

    def test_written_arrays(self):
        assert self.make_l2().written_arrays() == ["y"]

    def test_flops_sum(self):
        loop = self.make_l2()
        assert loop.flops_per_iteration() == 2.0

    def test_l1_single_statement(self):
        """The paper's loop L1: y(ia(i)) = x(ib(i)) + x(ic(i))."""
        loop = ForallLoop(
            "L1",
            50,
            [
                Assign(
                    ArrayRef("y", "ia"),
                    lambda a, b: a + b,
                    (ArrayRef("x", "ib"), ArrayRef("x", "ic")),
                )
            ],
        )
        # first-appearance order: statement reads precede its left-hand side
        assert loop.indirection_arrays() == ["ib", "ic", "ia"]
        assert loop.data_arrays() == ["x", "y"]

    def test_empty_statements_rejected(self):
        with pytest.raises(ValueError, match="no statements"):
            ForallLoop("L", 10, [])

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError, match="negative iteration"):
            ForallLoop("L", -1, [Assign(ArrayRef("y"), f, (ArrayRef("x"),))])

    def test_bad_statement_type(self):
        with pytest.raises(TypeError, match="unsupported statement"):
            ForallLoop("L", 10, ["y = x"])
