"""Modeled collective operations.

CHAOS uses collectives in a few places: broadcasting partitioning results,
gathering GeoCoL fragments, all-to-all exchanges when building translation
tables and remapping arrays.  These helpers charge the standard
tree/log-P cost models to every processor's clock and synchronize, so a
collective is a phase of its own.

Each function both *charges* the machine and *returns* the modeled wall
time of the collective, which makes them easy to unit-test.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.machine.machine import Machine


def _tree_depth(n: int) -> int:
    """Depth of a binomial tree over n processors."""
    return max(1, (n - 1).bit_length()) if n > 1 else 0


def broadcast_cost(machine: Machine, nbytes: int, root: int = 0) -> float:
    """One-to-all broadcast of ``nbytes`` via a binomial tree."""
    machine._check_rank(root)
    if nbytes < 0:
        raise ValueError(f"negative broadcast size {nbytes}")
    n = machine.n_procs
    if n == 1:
        return 0.0
    dt = _tree_depth(n) * machine.cost.message_time(nbytes)
    c = machine.counters
    c.clock += dt
    # message counters: every non-root receives once; internal nodes send
    recv = np.ones(n, dtype=np.int64)
    recv[root] = 0
    c.messages_received += recv
    c.bytes_received += recv * nbytes
    c.messages_sent[root] += n - 1
    c.bytes_sent[root] += (n - 1) * nbytes
    machine.barrier()
    return dt


def reduce_cost(machine: Machine, nbytes: int, root: int = 0) -> float:
    """All-to-one reduction of ``nbytes`` payloads (tree, with combine flops)."""
    machine._check_rank(root)
    if nbytes < 0:
        raise ValueError(f"negative reduction size {nbytes}")
    n = machine.n_procs
    if n == 1:
        return 0.0
    words = nbytes / 8.0
    per_level = machine.cost.message_time(nbytes) + machine.cost.compute_time(flops=words)
    dt = _tree_depth(n) * per_level
    machine.counters.clock += dt
    machine.barrier()
    return dt


def allreduce_cost(machine: Machine, nbytes: int) -> float:
    """All-reduce: reduce followed by broadcast (iPSC/860-era style)."""
    t1 = reduce_cost(machine, nbytes)
    t2 = broadcast_cost(machine, nbytes)
    return t1 + t2


def allgather_cost(machine: Machine, nbytes_per_proc: int) -> float:
    """All-gather where each processor contributes ``nbytes_per_proc``.

    Recursive-doubling model: log P rounds, doubling payload each round.
    """
    if nbytes_per_proc < 0:
        raise ValueError(f"negative allgather size {nbytes_per_proc}")
    n = machine.n_procs
    if n == 1:
        return 0.0
    dt = 0.0
    chunk = nbytes_per_proc
    rounds = _tree_depth(n)
    for _ in range(rounds):
        dt += machine.cost.message_time(chunk)
        chunk *= 2
    c = machine.counters
    c.clock += dt
    c.messages_sent += rounds
    c.messages_received += rounds
    c.bytes_sent += (2**rounds - 1) * nbytes_per_proc
    c.bytes_received += (2**rounds - 1) * nbytes_per_proc
    machine.barrier()
    return dt


def alltoallv_cost(machine: Machine, bytes_matrix: Sequence[Sequence[int]]) -> float:
    """Irregular all-to-all: ``bytes_matrix[src][dst]`` bytes per pair.

    Convenience wrapper over :meth:`Machine.exchange` that also
    synchronizes and returns the phase's wall-time contribution.
    """
    n = machine.n_procs
    if len(bytes_matrix) != n or any(len(row) != n for row in bytes_matrix):
        raise ValueError(f"bytes_matrix must be {n}x{n}")
    start = machine.elapsed()
    matrix = np.asarray(bytes_matrix, dtype=np.int64)
    src, dst = np.nonzero(matrix)
    machine.exchange(src=src, dst=dst, nbytes=matrix[src, dst])
    machine.barrier()
    return machine.elapsed() - start


def barrier_cost(machine: Machine) -> float:
    """Explicit barrier; returns the synchronized machine time."""
    return machine.barrier()
