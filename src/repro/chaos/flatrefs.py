"""Flat CSR form for per-processor index lists.

The CHAOS layers pass "one list per processor" data around constantly
(reference lists, translations, localized indices).  ``FlatRefs`` is the
shared flat representation: one concatenated value array plus ``(P + 1,)``
CSR bounds, so hot paths operate on single arrays while list consumers
slice zero-copy segments.  It lives below both ``ttable`` and
``localize`` so either layer can flatten or segment without duplicating
the conversion.
"""

from __future__ import annotations

import numpy as np


class FlatRefs:
    """Per-processor reference lists in flat CSR form.

    ``values`` concatenates every processor's list; processor ``p``'s
    slice is ``values[bounds[p]:bounds[p+1]]``.
    """

    __slots__ = ("values", "bounds")

    def __init__(self, values: np.ndarray, bounds: np.ndarray):
        self.values = np.asarray(values, dtype=np.int64)
        self.bounds = np.asarray(bounds, dtype=np.int64)

    @classmethod
    def from_lists(cls, ref_lists: "list[np.ndarray] | FlatRefs") -> "FlatRefs":
        if isinstance(ref_lists, FlatRefs):
            return ref_lists
        arrays = [np.asarray(r, dtype=np.int64) for r in ref_lists]
        bounds = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum([a.size for a in arrays], out=bounds[1:])
        values = (
            np.concatenate(arrays) if bounds[-1] else np.empty(0, dtype=np.int64)
        )
        return cls(values, bounds)

    @property
    def n_procs(self) -> int:
        return len(self.bounds) - 1

    def sizes(self) -> np.ndarray:
        return np.diff(self.bounds)

    def segment(self, p: int) -> np.ndarray:
        return self.values[self.bounds[p] : self.bounds[p + 1]]

    def segments(self) -> list[np.ndarray]:
        return [self.segment(p) for p in range(self.n_procs)]
