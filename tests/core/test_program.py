"""Integration tests for IrregularProgram: the full Figure 4/5 pipeline."""

import numpy as np
import pytest

from repro.core import ArrayRef, Assign, ForallLoop, IrregularProgram, Reduce
from repro.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


def edge_loop(n_edges, flops=2.0):
    x1, x2 = ArrayRef("x", "end_pt1"), ArrayRef("x", "end_pt2")
    return ForallLoop(
        "edge_sweep",
        n_edges,
        [
            Reduce("add", ArrayRef("y", "end_pt1"), lambda a, b: a * b, (x1, x2), flops=flops),
            Reduce("add", ArrayRef("y", "end_pt2"), lambda a, b: a - b, (x1, x2), flops=flops),
        ],
    )


def build_figure4_program(m, n_nodes=24, n_edges=40, seed=0, **kwargs):
    """The paper's Figure 4 program: read mesh, construct GeoCoL from
    LINK info, partition with RSB, redistribute, sweep edges."""
    rng = np.random.default_rng(seed)
    e1 = rng.integers(0, n_nodes, n_edges)
    e2 = (e1 + 1 + rng.integers(0, n_nodes - 1, n_edges)) % n_nodes
    prog = IrregularProgram(m, **kwargs)
    prog.decomposition("reg", n_nodes)
    prog.decomposition("reg2", n_edges)
    prog.distribute("reg", "block")
    prog.distribute("reg2", "block")
    prog.array("x", "reg", values=rng.normal(size=n_nodes))
    prog.array("y", "reg", values=np.zeros(n_nodes))
    prog.array("end_pt1", "reg2", values=e1, dtype=np.int64)
    prog.array("end_pt2", "reg2", values=e2, dtype=np.int64)
    return prog, e1, e2


def sweep_reference(x, y, e1, e2, times=1):
    out = y.copy()
    for _ in range(times):
        np.add.at(out, e1, x[e1] * x[e2])
        np.add.at(out, e2, x[e1] - x[e2])
    return out


class TestFigure4Pipeline:
    def test_full_pipeline_correct(self, m4):
        prog, e1, e2 = build_figure4_program(m4)
        x0 = prog.arrays["x"].to_global()
        prog.construct("G", 24, link=("end_pt1", "end_pt2"))
        prog.set_distribution("distfmt", "G", "RSB")
        prog.redistribute("reg", "distfmt")
        prog.forall(edge_loop(40), n_times=3)
        want = sweep_reference(x0, np.zeros(24), e1, e2, times=3)
        assert np.allclose(prog.arrays["y"].to_global(), want)
        # arrays actually moved to the irregular distribution
        assert prog.arrays["x"].distribution.kind == "irregular"

    def test_geometry_variant_figure5(self, m4):
        """Figure 5: GEOMETRY-based GeoCoL partitioned with RCB."""
        prog, e1, e2 = build_figure4_program(m4)
        rng = np.random.default_rng(1)
        prog.array("xc", "reg", values=rng.normal(size=24))
        prog.array("yc", "reg", values=rng.normal(size=24))
        prog.array("zc", "reg", values=rng.normal(size=24))
        prog.construct("G", 24, geometry=["xc", "yc", "zc"])
        prog.set_distribution("distfmt", "G", "RCB")
        prog.redistribute("reg", "distfmt")
        x0 = prog.arrays["x"].to_global()
        prog.forall(edge_loop(40))
        want = sweep_reference(x0, np.zeros(24), e1, e2)
        assert np.allclose(prog.arrays["y"].to_global(), want)

    def test_rcb_on_link_only_geocol_rejected(self, m4):
        prog, *_ = build_figure4_program(m4)
        prog.construct("G", 24, link=("end_pt1", "end_pt2"))
        with pytest.raises(ValueError, match="GEOMETRY"):
            prog.set_distribution("distfmt", "G", "RCB")

    def test_phase_times_positive(self, m4):
        prog, *_ = build_figure4_program(m4)
        prog.construct("G", 24, link=("end_pt1", "end_pt2"))
        prog.set_distribution("distfmt", "G", "RSB")
        prog.redistribute("reg", "distfmt")
        prog.forall(edge_loop(40), n_times=2)
        for phase in ["graph_generation", "partition", "remap", "inspector", "executor"]:
            assert prog.phase_time(phase) > 0, phase


class TestScheduleReuse:
    def test_inspector_runs_once_with_reuse(self, m4):
        prog, *_ = build_figure4_program(m4)
        prog.forall(edge_loop(40), n_times=10, reuse=True)
        assert prog.inspector_runs == 1
        assert prog.reuse_hits == 9

    def test_inspector_runs_every_time_without_reuse(self, m4):
        prog, *_ = build_figure4_program(m4)
        prog.forall(edge_loop(40), n_times=10, reuse=False)
        assert prog.inspector_runs == 10

    def test_reuse_is_faster(self):
        t = {}
        for reuse in (True, False):
            m = Machine(4)
            prog, *_ = build_figure4_program(m)
            m.reset()
            prog.forall(edge_loop(40), n_times=10, reuse=reuse)
            t[reuse] = m.elapsed()
        assert t[True] < t[False]

    def test_redistribute_invalidates(self, m4):
        prog, *_ = build_figure4_program(m4)
        prog.forall(edge_loop(40), n_times=2)
        assert prog.inspector_runs == 1
        prog.construct("G", 24, link=("end_pt1", "end_pt2"))
        prog.set_distribution("distfmt", "G", "RSB")
        prog.redistribute("reg", "distfmt")
        prog.forall(edge_loop(40), n_times=2)
        assert prog.inspector_runs == 2  # re-inspected once after remap

    def test_indirection_write_invalidates(self, m4):
        prog, e1, e2 = build_figure4_program(m4)
        prog.forall(edge_loop(40), n_times=1)
        rng = np.random.default_rng(9)
        new_e1 = rng.integers(0, 24, 40)
        prog.set_array("end_pt1", new_e1)
        prog.forall(edge_loop(40), n_times=1)
        assert prog.inspector_runs == 2
        # and the results reflect the NEW indirection values
        x0 = prog.arrays["x"].to_global()

    def test_data_write_does_not_invalidate(self, m4):
        prog, *_ = build_figure4_program(m4)
        prog.forall(edge_loop(40), n_times=1)
        prog.set_array("y", np.zeros(24))  # y is a data array
        prog.forall(edge_loop(40), n_times=1)
        assert prog.inspector_runs == 1
        assert prog.reuse_hits == 1

    def test_results_identical_with_and_without_reuse(self):
        outs = {}
        for reuse in (True, False):
            m = Machine(4)
            prog, e1, e2 = build_figure4_program(m)
            prog.forall(edge_loop(40), n_times=5, reuse=reuse)
            outs[reuse] = prog.arrays["y"].to_global()
        assert np.allclose(outs[True], outs[False])


class TestGeoColReuse:
    def test_unchanged_geocol_reused(self, m4):
        prog, *_ = build_figure4_program(m4)
        g1 = prog.construct("G", 24, link=("end_pt1", "end_pt2"))
        g2 = prog.construct("G", 24, link=("end_pt1", "end_pt2"))
        assert g2 is g1
        assert prog.geocol_reuse_hits == 1

    def test_modified_source_rebuilds(self, m4):
        prog, *_ = build_figure4_program(m4)
        g1 = prog.construct("G", 24, link=("end_pt1", "end_pt2"))
        prog.set_array("end_pt1", np.zeros(40, dtype=np.int64))
        g2 = prog.construct("G", 24, link=("end_pt1", "end_pt2"))
        assert g2 is not g1
        assert prog.geocol_reuse_hits == 0


class TestDeclarations:
    def test_duplicate_decomposition(self, m4):
        prog = IrregularProgram(m4)
        prog.decomposition("reg", 10)
        with pytest.raises(ValueError, match="already declared"):
            prog.decomposition("reg", 10)

    def test_duplicate_array(self, m4):
        prog = IrregularProgram(m4)
        prog.decomposition("reg", 10)
        prog.distribute("reg", "block")
        prog.array("x", "reg")
        with pytest.raises(ValueError, match="already declared"):
            prog.array("x", "reg")

    def test_array_before_distribute(self, m4):
        prog = IrregularProgram(m4)
        prog.decomposition("reg", 10)
        with pytest.raises(ValueError, match="not distributed"):
            prog.array("x", "reg")

    def test_unknown_decomposition(self, m4):
        prog = IrregularProgram(m4)
        with pytest.raises(KeyError, match="never declared"):
            prog.distribute("reg", "block")

    def test_unknown_geocol(self, m4):
        prog = IrregularProgram(m4)
        with pytest.raises(KeyError, match="never constructed"):
            prog.set_distribution("d", "G", "RCB")

    def test_unknown_spec(self, m4):
        prog = IrregularProgram(m4)
        prog.decomposition("reg", 10)
        with pytest.raises(ValueError, match="unknown distribution spec"):
            prog.distribute("reg", "diagonal")

    def test_cyclic_and_block_cyclic_specs(self, m4):
        prog = IrregularProgram(m4)
        prog.decomposition("a", 10)
        prog.distribute("a", "cyclic")
        prog.decomposition("b", 10)
        prog.distribute("b", ("block_cyclic", 2))
        assert prog.decomps["a"].distribution.kind == "cyclic"
        assert prog.decomps["b"].distribution.kind == "block_cyclic"

    def test_set_array_shape_checked(self, m4):
        prog = IrregularProgram(m4)
        prog.decomposition("reg", 10)
        prog.distribute("reg", "block")
        prog.array("x", "reg")
        with pytest.raises(ValueError, match="expected shape"):
            prog.set_array("x", np.zeros(5))


class TestTrackingOverhead:
    def test_hand_path_charges_less(self):
        t = {}
        for track in (True, False):
            m = Machine(4)
            prog, *_ = build_figure4_program(m, track=track)
            m.reset()
            prog.forall(edge_loop(40), n_times=20, reuse=True)
            t[track] = m.elapsed()
        assert t[False] <= t[True]

    def test_overhead_is_small(self):
        """The paper's claim: compiler-generated (tracked) code is within
        ~10% of hand-coded."""
        t = {}
        for track in (True, False):
            m = Machine(4)
            prog, *_ = build_figure4_program(m, track=track)
            m.reset()
            prog.forall(edge_loop(40, flops=30.0), n_times=50, reuse=True)
            t[track] = m.elapsed()
        assert t[True] <= 1.10 * t[False]
