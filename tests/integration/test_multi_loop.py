"""Multi-loop programs: the paper's 'same set of distributed arrays are
used by many loops' scenario -- each loop keeps its own inspector record;
reuse is per loop; a remap invalidates all of them at once."""

import numpy as np
import pytest

from repro.core import ArrayRef, Assign, ForallLoop, IrregularProgram, Reduce
from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_edge_loop, setup_euler_program


def face_like_loop(mesh, name="face_sweep"):
    """A second loop over the same mesh arrays with different structure
    (the paper's Figure 4 'Loop over faces involving x, y')."""
    x1 = ArrayRef("x", "end_pt1")
    return ForallLoop(
        name,
        mesh.n_edges,
        [Reduce("max", ArrayRef("y", "end_pt2"), lambda a: np.abs(a), (x1,), flops=3)],
    )


@pytest.fixture
def setup():
    mesh = generate_mesh(300, seed=13)
    m = Machine(4)
    prog = setup_euler_program(m, mesh, seed=13)
    return mesh, m, prog


class TestIndependentRecords:
    def test_each_loop_inspected_once(self, setup):
        mesh, m, prog = setup
        edge = euler_edge_loop(mesh)
        face = face_like_loop(mesh)
        for _ in range(3):
            prog.forall(edge)
            prog.forall(face)
        assert prog.inspector_runs == 2
        assert prog.reuse_hits == 4

    def test_alternating_loops_stay_correct(self, setup):
        mesh, m, prog = setup
        x = prog.arrays["x"].to_global()
        edge = euler_edge_loop(mesh)
        face = face_like_loop(mesh)
        for _ in range(2):
            prog.forall(edge)
            prog.forall(face)
        from repro.workloads.euler import euler_sequential_reference

        want = np.zeros(mesh.n_nodes)
        for _ in range(2):
            want = euler_sequential_reference(x, mesh.edges, n_times=1, y0=want)
            np.maximum.at(want, mesh.edges[1], np.abs(x[mesh.edges[0]]))
        assert np.allclose(prog.arrays["y"].to_global(), want)

    def test_translation_tables_shared_across_loops(self, setup):
        """Loops over the same arrays share cached translation tables."""
        mesh, m, prog = setup
        prog.forall(euler_edge_loop(mesh))
        n_tables = len(prog.ttables)
        prog.forall(face_like_loop(mesh))
        # face loop references a subset of the same arrays/distributions
        assert len(prog.ttables) == n_tables

    def test_remap_invalidates_every_loop(self, setup):
        mesh, m, prog = setup
        edge = euler_edge_loop(mesh)
        face = face_like_loop(mesh)
        prog.forall(edge)
        prog.forall(face)
        prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
        prog.set_distribution("fmt", "G", "RCB")
        prog.redistribute("reg", "fmt")
        prog.forall(edge)
        prog.forall(face)
        assert prog.inspector_runs == 4  # both re-inspected after remap

    def test_indirection_write_invalidates_only_users(self, setup):
        """A loop that does not use the modified indirection array keeps
        its schedule."""
        mesh, m, prog = setup
        edge = euler_edge_loop(mesh)  # uses end_pt1, end_pt2
        direct = ForallLoop(
            "direct",
            mesh.n_nodes,
            [Assign(ArrayRef("y"), lambda a: 2 * a, (ArrayRef("x"),))],
        )
        prog.forall(edge)
        prog.forall(direct)
        rng = np.random.default_rng(2)
        prog.set_array("end_pt1", rng.integers(0, mesh.n_nodes, mesh.n_edges))
        prog.forall(edge)  # must re-inspect
        prog.forall(direct)  # no indirection arrays -> reusable
        assert prog.inspector_runs == 3
