"""Flattened-schedule equivalence: CSR apply path vs the naive pair loop.

``CommSchedule`` historically iterated ``send_lists`` pair by pair; it
now applies one flattened fancy-index per processor.  These tests keep a
small naive reference implementation (the old per-pair semantics) and
check, over randomized schedules, that gather / scatter / scatter_op
produce *identical* array contents and *bit-identical* per-processor
machine clocks and counters -- including the order-sensitive cases:
duplicate recv slots (last writer wins) and floating-point reduction
accumulation order.
"""

import numpy as np
import pytest

from repro.chaos.costs import DEFAULT_COSTS
from repro.chaos.schedule import CommSchedule
from repro.distribution.distarray import DistArray
from repro.distribution.regular import BlockDistribution
from repro.machine.machine import Machine


# ----------------------------------------------------------------------
# naive reference: the historical per-(sender, receiver)-pair loop
# ----------------------------------------------------------------------
def naive_gather(machine, send_lists, recv_slots, arr, ghosts, costs=DEFAULT_COSTS):
    n = machine.n_procs
    pack = np.zeros(n)
    unpack = np.zeros(n)
    wires = {}
    for (q, p), sl in send_lists.items():
        if not len(sl):
            continue
        ghosts[p][recv_slots[(q, p)]] = arr.local(q)[sl]
        pack[q] += costs.pack_unpack_mem * len(sl)
        unpack[p] += costs.pack_unpack_mem * len(sl)
        wires[(q, p)] = len(sl) * arr.itemsize
    machine.charge_compute_all(mem=list(pack))
    machine.exchange(wires)
    machine.charge_compute_all(mem=list(unpack))


def naive_reverse(
    machine, send_lists, recv_slots, ghosts, arr, op, costs=DEFAULT_COSTS
):
    n = machine.n_procs
    pack = np.zeros(n)
    unpack = np.zeros(n)
    combine = np.zeros(n)
    wires = {}
    for (q, p), sl in send_lists.items():
        if not len(sl):
            continue
        data = ghosts[p][recv_slots[(q, p)]]
        if op is None:
            arr.local(q)[sl] = data
        else:
            op.at(arr.local(q), sl, data)
            combine[q] += 1.0 * len(sl)
        pack[p] += costs.pack_unpack_mem * len(sl)
        unpack[q] += costs.pack_unpack_mem * len(sl)
        wires[(p, q)] = len(sl) * arr.itemsize
    machine.charge_compute_all(mem=list(pack))
    machine.exchange(wires)
    machine.charge_compute_all(mem=list(unpack), flops=list(combine))


# ----------------------------------------------------------------------
# randomized schedule construction
# ----------------------------------------------------------------------
def random_schedule_parts(rng, n_procs, local_size, max_ghost=12):
    """Random send/recv pair dicts (duplicates allowed) + ghost sizes."""
    ghost_sizes = [int(rng.integers(0, max_ghost + 1)) for _ in range(n_procs)]
    send_lists = {}
    recv_slots = {}
    pairs = [
        (q, p)
        for q in range(n_procs)
        for p in range(n_procs)
        if rng.random() < 0.6
    ]
    pairs = [pairs[i] for i in rng.permutation(len(pairs))]
    for q, p in pairs:
        if ghost_sizes[p] == 0:
            count = 0
        else:
            count = int(rng.integers(0, 2 * ghost_sizes[p] + 1))
        # duplicate send offsets and recv slots are deliberately allowed:
        # they exercise last-writer-wins and accumulation-order semantics
        send_lists[(q, p)] = rng.integers(0, local_size, size=count)
        recv_slots[(q, p)] = rng.integers(0, max(ghost_sizes[p], 1), size=count)
    return send_lists, recv_slots, ghost_sizes


def make_world(n_procs, size, seed):
    machine = Machine(n_procs, topology="full" if n_procs & (n_procs - 1) else "hypercube")
    dist = BlockDistribution(size, n_procs)
    rng = np.random.default_rng(seed)
    arr = DistArray.from_global(machine, dist, rng.normal(size=size), name="x")
    min_local = min(dist.local_size(p) for p in range(n_procs))
    return machine, arr, min_local


def clocks(machine):
    return [machine.procs[p].stats.clock for p in range(machine.n_procs)]


def counters(machine):
    return [
        (
            s.stats.messages_sent,
            s.stats.messages_received,
            s.stats.bytes_sent,
            s.stats.bytes_received,
            s.stats.flops,
            s.stats.mem_ops,
        )
        for s in machine.procs
    ]


CASES = [(2, 17, 0), (3, 23, 1), (4, 40, 2), (4, 64, 3), (8, 61, 4), (8, 128, 5)]


@pytest.mark.parametrize("n_procs,size,seed", CASES)
def test_gather_matches_naive(n_procs, size, seed):
    rng = np.random.default_rng(seed)
    m_flat, arr_flat, min_local = make_world(n_procs, size, seed)
    m_ref, arr_ref, _ = make_world(n_procs, size, seed)
    send, recv, gsizes = random_schedule_parts(rng, n_procs, min_local)

    sched = CommSchedule(m_flat, arr_flat.distribution.signature(), send, recv, gsizes)
    g_flat = [np.zeros(s) for s in gsizes]
    g_ref = [np.zeros(s) for s in gsizes]

    sched.gather(arr_flat, g_flat)
    naive_gather(m_ref, sched.send_lists, sched.recv_slots, arr_ref, g_ref)

    for p in range(n_procs):
        np.testing.assert_array_equal(g_flat[p], g_ref[p])
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)


@pytest.mark.parametrize("n_procs,size,seed", CASES)
@pytest.mark.parametrize("opname", ["assign", "add", "max"])
def test_reverse_matches_naive(n_procs, size, seed, opname):
    rng = np.random.default_rng(seed + 100)
    m_flat, arr_flat, min_local = make_world(n_procs, size, seed)
    m_ref, arr_ref, _ = make_world(n_procs, size, seed)
    send, recv, gsizes = random_schedule_parts(rng, n_procs, min_local)

    sched = CommSchedule(m_flat, arr_flat.distribution.signature(), send, recv, gsizes)
    contrib = [rng.normal(size=s) for s in gsizes]
    g_flat = [c.copy() for c in contrib]
    g_ref = [c.copy() for c in contrib]

    op = {"assign": None, "add": np.add, "max": np.maximum}[opname]
    if op is None:
        sched.scatter(g_flat, arr_flat)
    else:
        sched.scatter_op(g_flat, arr_flat, op)
    naive_reverse(m_ref, sched.send_lists, sched.recv_slots, g_ref, arr_ref, op)

    for p in range(n_procs):
        np.testing.assert_array_equal(arr_flat.local(p), arr_ref.local(p))
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)


def test_empty_and_self_pairs():
    """Self-messages and empty pairs survive flattening unchanged."""
    m_flat, arr_flat, _ = make_world(2, 10, 7)
    m_ref, arr_ref, _ = make_world(2, 10, 7)
    send = {
        (0, 0): np.array([1, 2]),  # self pair: local memory copy
        (1, 0): np.array([], dtype=np.int64),  # empty: skipped entirely
        (0, 1): np.array([3, 3]),  # duplicate sends of one element
    }
    recv = {
        (0, 0): np.array([0, 1]),
        (1, 0): np.array([], dtype=np.int64),
        (0, 1): np.array([1, 0]),
    }
    gsizes = [2, 2]
    sched = CommSchedule(m_flat, arr_flat.distribution.signature(), send, recv, gsizes)
    g_flat = [np.zeros(2), np.zeros(2)]
    g_ref = [np.zeros(2), np.zeros(2)]
    sched.gather(arr_flat, g_flat)
    naive_gather(m_ref, sched.send_lists, sched.recv_slots, arr_ref, g_ref)
    for p in range(2):
        np.testing.assert_array_equal(g_flat[p], g_ref[p])
    assert clocks(m_flat) == clocks(m_ref)
    # the empty pair must not produce a message
    assert m_flat.procs[1].stats.messages_sent == 0


def small_schedule(seed=21):
    rng = np.random.default_rng(seed)
    machine, arr, min_local = make_world(4, 40, seed)
    send, recv, gsizes = random_schedule_parts(rng, 4, min_local)
    return CommSchedule(machine, arr.distribution.signature(), send, recv, gsizes)


class TestEntriesImmutability:
    """Writing through entries() views must raise, not corrupt."""

    def test_all_four_views_are_readonly(self):
        sched = small_schedule()
        q, p, send, recv = sched.entries()
        assert q.size  # a trivially empty schedule would prove nothing
        for view in (q, p, send, recv):
            assert not view.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                view[0] = 99

    def test_send_recv_are_views_not_copies(self):
        # zero-copy is the point of the flat layout: entries() must not
        # silently duplicate the arrays to get safety
        sched = small_schedule()
        _, _, send, recv = sched.entries()
        assert send.base is sched._flat_send
        assert recv.base is sched._flat_recv


class TestPatchedValidation:
    """patched() must reject malformed inputs before building any state."""

    def test_mismatched_add_lengths_raise(self):
        sched = small_schedule()
        n = sched.entry_count() if hasattr(sched, "entry_count") else sched._n_elements
        keep = np.ones(n, dtype=bool)
        two = np.zeros(2, dtype=np.int64)
        three = np.zeros(3, dtype=np.int64)
        with pytest.raises(ValueError, match="same length"):
            sched.patched(keep, two, two, two, three, sched.ghost_sizes)
        with pytest.raises(ValueError, match="same length"):
            sched.patched(keep, two, three, two, two, sched.ghost_sizes)
        with pytest.raises(ValueError, match="same length"):
            sched.patched(
                keep, two, two, two, two, sched.ghost_sizes, add_key=three
            )

    def test_scalar_add_arrays_raise(self):
        sched = small_schedule()
        keep = np.ones(sched._n_elements, dtype=bool)
        with pytest.raises(ValueError, match="1-D"):
            sched.patched(keep, 1, 1, 1, 1, sched.ghost_sizes)

    def test_bad_keep_shape_raises(self):
        sched = small_schedule()
        empty = np.zeros(0, dtype=np.int64)
        with pytest.raises(ValueError, match="keep mask"):
            sched.patched(
                np.ones(sched._n_elements + 1, dtype=bool),
                empty, empty, empty, empty, sched.ghost_sizes,
            )

    def test_schedule_untouched_after_rejected_patch(self):
        sched = small_schedule()
        before = [a.copy() for a in (sched._flat_send, sched._flat_recv)]
        two = np.zeros(2, dtype=np.int64)
        three = np.zeros(3, dtype=np.int64)
        with pytest.raises(ValueError):
            sched.patched(
                np.ones(sched._n_elements, dtype=bool),
                two, two, two, three, sched.ghost_sizes,
            )
        assert np.array_equal(sched._flat_send, before[0])
        assert np.array_equal(sched._flat_recv, before[1])


class TestTwin:
    def test_twin_shares_arrays_under_distinct_identity(self):
        sched = small_schedule()
        tw = sched.twin()
        assert tw is not sched
        assert tw._flat_send is sched._flat_send
        assert tw._flat_recv is sched._flat_recv
        assert tw._pair_q is sched._pair_q
        assert tw.ghost_sizes == sched.ghost_sizes
        a = sched.entries()
        b = tw.entries()
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
