"""``repro.adapt``: incremental inspection for adaptive codes.

The paper's Section 3 reuse check is binary: if *any* write may have
touched an indirection array's DAD since loop L was inspected, L's whole
inspector re-runs.  Adaptive codes (mesh refinement, repartitioning MD
pair lists) modify a few percent of an indirection array every few dozen
time steps and pay the full inspector each time.  This subsystem is the
CHAOS-lineage follow-on: when the conservative check fails *only*
because indirection values changed (condition 3, with every DAD intact),
it diffs the current indirection values against a snapshot taken at the
last inspection, computes exactly which references moved, and **patches**
the saved :class:`~repro.core.inspector.InspectorProduct` -- re-voting
only the changed iterations, translating only the added references (one
``dereference_flat`` over the delta), and retiring/appending ghost slots
in place -- while charging the simulated machine only for the delta
work.  The patched product is equivalent to a from-scratch inspection:
same iteration partition, same ghost sets, same communication pairs and
wire contents, bit-identical executor results and executor charges.

Layout contract (mirrors ``buffers.py``/``distarray.py``)
---------------------------------------------------------
Per pattern *group* (the patterns sharing one coalesced schedule), ghost
slots live in one CSR slot space: processor ``p`` owns slots
``slot_bounds[p]:slot_bounds[p+1]`` and slot ``s`` of ``p`` has global
slot id ``slot_bounds[p] + s``.  Patching is **append-only with holes**:

* a retained ghost keeps its per-processor slot index forever -- saved
  localized reference lists, schedule recv slots, and ghost-buffer
  positions for unchanged references stay valid across any number of
  patches;
* a ghost whose reference count drops to zero is *retired* in place:
  its slot becomes a hole (it leaves the schedule, its contents are
  never read again) but later slots do not shift;
* new ghosts first *reuse* holes (ascending slot order within each
  processor), then *append* at the end of the processor's region, so a
  region only ever grows by the number of never-before-seen ghosts.

``GroupState`` tracks, per global slot id: the ghost's global array
index (``keys``; stale in holes until reused), its owner and owner-local
offset (``owners``/``lidx``; valid while the distribution signature is
unchanged, which conditions 1-2 guarantee), and the live reference count
(``counts``; 0 marks a hole).  A patched
:class:`~repro.chaos.localize.LocalizeResult` stores the full slot-space
``ghost_flat`` with holes marked ``-1``.

Wall-time contract (host clock, not simulated time)
---------------------------------------------------
Patching must be cheaper than full re-inspection *for the machine
running the simulation* too, at every churn fraction the adaptive bench
measures -- otherwise "incremental" only relabels work.  Everything on
the patch path is therefore delta-proportional:

* the composite-key slot index is kept **sorted persistently** and
  merge-updated, so lookup is a searchsorted over the delta, never a
  re-sort of the full slot space;
* schedules and ghost buffers are patched as flat CSR arrays in place
  (retire/append as above), never rebuilt;
* executor caches (``exec_space``/``exec_refs``) are carried across the
  patch and overwritten only at delta positions
  (:func:`repro.core.executor.patch_exec_caches`);
* pattern groups with provably identical communication structure (same
  distribution, element-equal indirection state -- e.g. the x- and
  y-patterns of one edge loop) are patched **once**: the second group
  replays the first's simulated charges and adopts its arrays under a
  distinct schedule identity (``CommSchedule.twin``), halving patch
  wall time in the common two-group case.

``benchmarks/bench_table_adapt.py`` gates this: patch wall must beat
full-re-inspection wall at the smallest churn fraction, and the
patch/full wall ratio should shrink with churn.

The same retire/append discipline extends to **repartitioning**:
:func:`repro.distribution.irregular.repartition_stable` keeps every
unmoved element's (owner, local offset) across a load-balance step, so
:func:`repro.chaos.remap.patch_remap_schedule` builds the array-remap
schedule from the migration delta alone -- the mapper/coupler epoch
loop patches its remaps the way refinement epochs patch their
schedules.
"""

from repro.adapt.diff import (
    changed_at,
    changed_positions,
    expand_ranges,
    ranges_from_positions,
)
from repro.adapt.driver import AdaptiveExecutor, IncrementalInspector
from repro.adapt.patch import PatchResult, patch_product
from repro.adapt.state import GroupState, LoopAdaptState, build_adapt_state

__all__ = [
    "AdaptiveExecutor",
    "IncrementalInspector",
    "GroupState",
    "LoopAdaptState",
    "build_adapt_state",
    "PatchResult",
    "patch_product",
    "changed_at",
    "changed_positions",
    "expand_ranges",
    "ranges_from_positions",
]
