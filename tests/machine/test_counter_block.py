"""Struct-of-arrays counter block vs the seed-era object store.

``Machine`` now keeps all per-processor counters in one
:class:`~repro.machine.stats.CounterBlock` (one ndarray per counter) and
updates them with whole-array operations.  These tests keep a reference
machine whose counters are genuine per-processor ``ProcessorStats``
objects updated by the historical Python folds (the seed-era semantics),
drive both through randomized operation sequences -- compute charges,
sends, dict- and array-form exchanges, barriers, nested phases, and the
collectives -- and assert *bit-identical* clocks, counters, snapshots,
and phase records.
"""

import numpy as np
import pytest

from repro.machine import Machine
from repro.machine.collectives import allgather_cost, broadcast_cost, reduce_cost
from repro.machine.costmodel import IPSC860
from repro.machine.stats import ProcessorStats
from repro.machine.topology import make_topology


# ----------------------------------------------------------------------
# reference implementation: per-processor ProcessorStats objects and the
# historical Python folds (seed-era object-store semantics)
# ----------------------------------------------------------------------
class RefMachine:
    def __init__(self, n_procs, cost_model=IPSC860, topology="hypercube"):
        self.n_procs = n_procs
        self.cost = cost_model
        self.topology = make_topology(topology, n_procs)
        self.stats_objs = [ProcessorStats() for _ in range(n_procs)]
        self.phases = []

    def elapsed(self):
        return max(st.clock for st in self.stats_objs)

    def charge_compute(self, p, flops=0.0, iops=0.0, mem=0.0):
        dt = self.cost.compute_time(flops=flops, iops=iops, mem=mem)
        st = self.stats_objs[p]
        st.clock += dt
        st.flops += flops
        st.iops += iops
        st.mem_ops += mem
        return dt

    def charge_compute_all(self, flops=0.0, iops=0.0, mem=0.0):
        n = self.n_procs
        fl = np.broadcast_to(np.asarray(flops, dtype=np.float64), (n,))
        io = np.broadcast_to(np.asarray(iops, dtype=np.float64), (n,))
        me = np.broadcast_to(np.asarray(mem, dtype=np.float64), (n,))
        dt = self.cost.compute_time_array(flops=fl, iops=io, mem=me)
        for p in range(n):
            st = self.stats_objs[p]
            st.clock += dt[p]
            st.flops += fl[p]
            st.iops += io[p]
            st.mem_ops += me[p]

    def send(self, src, dst, nbytes):
        if src == dst:
            return self.charge_compute(src, mem=nbytes / 8.0)
        hops = self.topology.hops(src, dst)
        dt = self.cost.message_time(nbytes, hops)
        s, d = self.stats_objs[src], self.stats_objs[dst]
        s.clock += dt
        s.messages_sent += 1
        s.bytes_sent += nbytes
        d.clock += dt
        d.messages_received += 1
        d.bytes_received += nbytes
        return dt

    def exchange(self, bytes_matrix=None, *, src=None, dst=None, nbytes=None):
        if bytes_matrix is not None:
            count = len(bytes_matrix)
            src = np.empty(count, dtype=np.int64)
            dst = np.empty(count, dtype=np.int64)
            nbytes = np.empty(count, dtype=np.int64)
            for i, ((s, d), nb) in enumerate(bytes_matrix.items()):
                src[i] = s
                dst[i] = d
                nbytes[i] = nb
        else:
            src = np.asarray(src, dtype=np.int64)
            dst = np.asarray(dst, dtype=np.int64)
            nbytes = np.asarray(nbytes, dtype=np.int64)
        if src.size == 0:
            return
        n = self.n_procs
        live = nbytes != 0
        if not live.all():
            src, dst, nbytes = src[live], dst[live], nbytes[live]
            if src.size == 0:
                return
        self_mask = src == dst
        clock_add = np.zeros(n)
        mem_add = np.zeros(n)
        if self_mask.any():
            words = nbytes[self_mask] / 8.0
            np.add.at(clock_add, src[self_mask], self.cost.compute_time_array(mem=words))
            np.add.at(mem_add, src[self_mask], words)
        cross = ~self_mask
        xsrc, xdst, xbytes = src[cross], dst[cross], nbytes[cross]
        send_time = np.zeros(n)
        recv_time = np.zeros(n)
        msg_sent = np.zeros(n, dtype=np.int64)
        msg_recv = np.zeros(n, dtype=np.int64)
        bytes_sent = np.zeros(n, dtype=np.int64)
        bytes_recv = np.zeros(n, dtype=np.int64)
        if xsrc.size:
            hops = self.topology.hops_array(xsrc, xdst)
            dt = self.cost.message_time_array(xbytes, hops)
            np.add.at(send_time, xsrc, dt)
            np.add.at(recv_time, xdst, dt)
            msg_sent = np.bincount(xsrc, minlength=n)
            msg_recv = np.bincount(xdst, minlength=n)
            bytes_sent = np.bincount(xsrc, weights=xbytes, minlength=n).astype(np.int64)
            bytes_recv = np.bincount(xdst, weights=xbytes, minlength=n).astype(np.int64)
        # the seed-era O(P) Python fold over stats objects
        for p in range(n):
            st = self.stats_objs[p]
            st.clock += clock_add[p]
            st.mem_ops += mem_add[p]
            st.messages_sent += int(msg_sent[p])
            st.bytes_sent += int(bytes_sent[p])
            st.messages_received += int(msg_recv[p])
            st.bytes_received += int(bytes_recv[p])
            st.clock += send_time[p] + recv_time[p]

    def barrier(self):
        t = self.elapsed()
        if self.n_procs > 1:
            depth = max(1, (self.n_procs - 1).bit_length())
            t += 2 * depth * self.cost.alpha
        for st in self.stats_objs:
            st.clock = t
        return t

    def phase_open(self):
        self.barrier()
        return self.elapsed(), [st.snapshot() for st in self.stats_objs]

    def phase_close(self, name, opened):
        start, before = opened
        self.barrier()
        end = self.elapsed()
        per_proc = [st.delta(before[p]) for p, st in enumerate(self.stats_objs)]
        self.phases.append((name, end - start, per_proc))


# seed-era collectives: per-processor loops over the stats objects
def ref_broadcast(ref, nbytes, root=0):
    n = ref.n_procs
    if n == 1:
        return
    dt = max(1, (n - 1).bit_length()) * ref.cost.message_time(nbytes)
    for st in ref.stats_objs:
        st.clock += dt
    for p in range(n):
        if p != root:
            ref.stats_objs[p].messages_received += 1
            ref.stats_objs[p].bytes_received += nbytes
    ref.stats_objs[root].messages_sent += n - 1
    ref.stats_objs[root].bytes_sent += (n - 1) * nbytes
    ref.barrier()


def ref_reduce(ref, nbytes, root=0):
    n = ref.n_procs
    if n == 1:
        return
    words = nbytes / 8.0
    per_level = ref.cost.message_time(nbytes) + ref.cost.compute_time(flops=words)
    dt = max(1, (n - 1).bit_length()) * per_level
    for st in ref.stats_objs:
        st.clock += dt
    ref.barrier()


def ref_allgather(ref, nbytes_per_proc):
    n = ref.n_procs
    if n == 1:
        return
    dt = 0.0
    chunk = nbytes_per_proc
    rounds = max(1, (n - 1).bit_length())
    for _ in range(rounds):
        dt += ref.cost.message_time(chunk)
        chunk *= 2
    for st in ref.stats_objs:
        st.clock += dt
        st.messages_sent += rounds
        st.messages_received += rounds
        st.bytes_sent += (2**rounds - 1) * nbytes_per_proc
        st.bytes_received += (2**rounds - 1) * nbytes_per_proc
    ref.barrier()


# ----------------------------------------------------------------------
# randomized operation sequences
# ----------------------------------------------------------------------
def random_ops(rng, n_procs, count):
    ops = []
    for _ in range(count):
        kind = rng.choice(
            ["compute", "compute_all", "send", "exchange_dict",
             "exchange_arrays", "barrier", "broadcast", "reduce", "allgather"]
        )
        if kind == "compute":
            ops.append((kind, int(rng.integers(n_procs)),
                        float(rng.integers(0, 50)), float(rng.integers(0, 50)),
                        float(rng.integers(0, 50))))
        elif kind == "compute_all":
            ops.append((kind, rng.integers(0, 40, n_procs).astype(float),
                        rng.integers(0, 40, n_procs).astype(float),
                        float(rng.integers(0, 40))))
        elif kind == "send":
            ops.append((kind, int(rng.integers(n_procs)), int(rng.integers(n_procs)),
                        int(rng.integers(0, 2000))))
        elif kind in ("exchange_dict", "exchange_arrays"):
            k = int(rng.integers(0, 3 * n_procs))
            src = rng.integers(0, n_procs, k)
            dst = rng.integers(0, n_procs, k)
            # duplicates and zero-byte entries deliberately included
            nb = rng.integers(0, 500, k)
            ops.append((kind, src, dst, nb))
        elif kind == "broadcast":
            ops.append((kind, int(rng.integers(0, 4096)), int(rng.integers(n_procs))))
        elif kind == "reduce":
            ops.append((kind, int(rng.integers(0, 4096))))
        elif kind == "allgather":
            ops.append((kind, int(rng.integers(0, 1024))))
        else:
            ops.append((kind,))
    return ops


def apply_op(machine, ref, op):
    kind = op[0]
    if kind == "compute":
        _, p, fl, io, me = op
        machine.charge_compute(p, flops=fl, iops=io, mem=me)
        ref.charge_compute(p, flops=fl, iops=io, mem=me)
    elif kind == "compute_all":
        _, fl, io, me = op
        machine.charge_compute_all(flops=fl, iops=io, mem=me)
        ref.charge_compute_all(flops=fl, iops=io, mem=me)
    elif kind == "send":
        _, s, d, nb = op
        machine.send(s, d, nb)
        ref.send(s, d, nb)
    elif kind == "exchange_dict":
        _, src, dst, nb = op
        mat = {}
        for s, d, v in zip(src, dst, nb):
            mat[(int(s), int(d))] = int(v)
        machine.exchange(dict(mat))
        ref.exchange(dict(mat))
    elif kind == "exchange_arrays":
        _, src, dst, nb = op
        machine.exchange(src=src, dst=dst, nbytes=nb)
        ref.exchange(src=src, dst=dst, nbytes=nb)
    elif kind == "barrier":
        machine.barrier()
        ref.barrier()
    elif kind == "broadcast":
        _, nb, root = op
        broadcast_cost(machine, nb, root)
        ref_broadcast(ref, nb, root)
    elif kind == "reduce":
        _, nb = op
        reduce_cost(machine, nb)
        ref_reduce(ref, nb)
    elif kind == "allgather":
        _, nb = op
        allgather_cost(machine, nb)
        ref_allgather(ref, nb)


def assert_identical(machine, ref):
    for p in range(machine.n_procs):
        assert machine.procs[p].stats.snapshot() == ref.stats_objs[p]
        # the indexed MachineStats view materializes the same snapshot
        assert machine.stats[p] == ref.stats_objs[p]
    assert machine.elapsed() == ref.elapsed()
    # per-counter machine totals straight off the array block
    assert int(machine.counters.messages_sent.sum()) == sum(
        st.messages_sent for st in ref.stats_objs
    )
    assert int(machine.counters.bytes_received.sum()) == sum(
        st.bytes_received for st in ref.stats_objs
    )
    assert float(machine.counters.flops.sum()) == sum(st.flops for st in ref.stats_objs)


CASES = [(1, 0), (2, 1), (3, 2), (4, 3), (8, 4), (16, 5)]


@pytest.mark.parametrize("n_procs,seed", CASES)
def test_randomized_sequences_match_object_store(n_procs, seed):
    rng = np.random.default_rng(seed)
    topo = "hypercube" if n_procs & (n_procs - 1) == 0 else "full"
    machine = Machine(n_procs, topology=topo)
    ref = RefMachine(n_procs, topology=topo)
    for op in random_ops(rng, n_procs, 60):
        apply_op(machine, ref, op)
    assert_identical(machine, ref)


@pytest.mark.parametrize("n_procs,seed", [(4, 10), (8, 11)])
def test_phases_match_object_store(n_procs, seed):
    """Nested phases produce identical elapsed times and per-proc deltas."""
    rng = np.random.default_rng(seed)
    machine = Machine(n_procs)
    ref = RefMachine(n_procs)
    with machine.phase("outer"):
        opened_outer = ref.phase_open()
        for op in random_ops(rng.spawn(1)[0], n_procs, 15):
            apply_op(machine, ref, op)
        with machine.phase("inner"):
            opened_inner = ref.phase_open()
            for op in random_ops(rng.spawn(2)[1], n_procs, 15):
                apply_op(machine, ref, op)
            ref.phase_close("inner", opened_inner)
        ref.phase_close("outer", opened_outer)
    assert [p.name for p in machine.stats.phases] == [n for n, _, _ in ref.phases]
    for rec, (_, elapsed, per_proc) in zip(machine.stats.phases, ref.phases):
        assert rec.elapsed == elapsed
        assert rec.per_proc == per_proc
        assert rec.total_messages == sum(s.messages_sent for s in per_proc)
        assert rec.total_bytes == sum(s.bytes_sent for s in per_proc)
        assert rec.total_flops == sum(s.flops for s in per_proc)
        assert rec.max_clock == max((s.clock for s in per_proc), default=0.0)
    assert_identical(machine, ref)


class TestViewSemantics:
    def test_view_writes_hit_the_block(self):
        m = Machine(4)
        m.procs[2].stats.clock += 1.5
        m.procs[2].stats.messages_sent += 3
        assert m.counters.clock[2] == 1.5
        assert m.counters.messages_sent[2] == 3
        assert m.clock(2) == 1.5

    def test_snapshot_is_decoupled(self):
        m = Machine(2)
        m.charge_compute(0, flops=10.0)
        snap = m.procs[0].stats.snapshot()
        m.charge_compute(0, flops=10.0)
        assert snap.flops == 10.0
        assert m.procs[0].stats.flops == 20.0

    def test_stats_indexing_requires_binding(self):
        from repro.machine.stats import MachineStats

        with pytest.raises(TypeError, match="not bound"):
            MachineStats()[0]

    def test_reset_zeroes_block(self):
        m = Machine(4)
        m.send(0, 1, 100)
        with m.phase("x"):
            m.charge_compute(0, flops=1.0)
        m.reset()
        assert m.elapsed() == 0.0
        assert int(m.counters.messages_sent.sum()) == 0
        assert m.stats.phases == []
