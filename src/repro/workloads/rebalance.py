"""Load-imbalance-driven repartitioning scenario (Table 2's epoch loop).

The paper's mapper/coupler story: an adaptive computation's per-node
work drifts over time (a shock or refinement front concentrates work),
the load balancer responds by migrating a *small* set of elements
between processors, and every distributed array is remapped before the
sweep continues.  Rebuilding the remap schedule from scratch costs
O(N) per epoch even when only a handful of elements actually move;
:func:`repro.distribution.irregular.repartition_stable` plus
``redistribute(..., moved=...)`` makes the remap cost proportional to
the migration delta instead.

:func:`drifting_weights` produces the deterministic per-epoch work
model (a Gaussian hotspot whose center walks across the domain);
:func:`rebalance_moves` is the greedy balancer turning a weighted
distribution into an element-move list; :func:`run_rebalance_campaign`
drives the full epoch loop in either full-rebuild or incremental mode.
Both modes land on bit-identical distributions and array contents --
only the simulated remap charges differ.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.distribution.irregular import repartition_stable
from repro.machine.machine import Machine
from repro.workloads.euler import euler_edge_loop, setup_euler_program
from repro.workloads.mesh import UnstructuredMesh


def drifting_weights(
    mesh: UnstructuredMesh, epoch: int, seed: int = 0, amplitude: float = 8.0
) -> np.ndarray:
    """Per-node work weights with a hotspot that drifts each epoch.

    Weight is ``1 + amplitude * exp(-(d/r)^2)`` where ``d`` is the
    distance to the epoch's hotspot center -- a new deterministic
    center per epoch, modeling a feature moving through the domain.
    Independent of any distribution, so both campaign modes see the
    identical load signal.
    """
    rng = np.random.default_rng(seed)
    centers = rng.integers(0, mesh.n_nodes, size=epoch + 1)
    center = mesh.coords[:, centers[epoch]]
    d = np.linalg.norm(mesh.coords - center[:, None], axis=0)
    radius = 0.25 * (d.max() + 1e-12)
    return 1.0 + amplitude * np.exp(-((d / radius) ** 2))


def rebalance_moves(
    dist: Distribution, weights, slack: float = 0.05
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy element migration restoring load balance within ``slack``.

    Overloaded processors (load above ``mean * (1 + slack)``) shed their
    heaviest elements, one at a time, to the currently lightest
    processor -- the classic greedy repartitioner.  Fully deterministic:
    donors are visited heaviest-first, elements shed by descending
    weight with global index as tie-break.  Returns ``(move_g,
    move_to)`` ready for ``redistribute(..., moved=...)``; the move
    count scales with the *imbalance*, not the mesh size.
    """
    w = np.asarray(weights, dtype=np.float64)
    n = dist.n_procs
    if w.shape != (dist.size,):
        raise ValueError(f"expected {dist.size} weights, got shape {w.shape}")
    g_all = np.arange(dist.size, dtype=np.int64)
    owner = np.asarray(dist.owner(g_all), dtype=np.int64)
    loads = np.bincount(owner, weights=w, minlength=n).astype(np.float64)
    target = loads.sum() / n
    hi = target * (1.0 + slack)
    move_g: list[int] = []
    move_to: list[int] = []
    donors = np.flatnonzero(loads > hi)
    for p in donors[np.argsort(-loads[donors], kind="stable")]:
        mine = np.flatnonzero(owner == p)
        shed_order = mine[np.lexsort((mine, -w[mine]))]
        for g in shed_order:
            if loads[p] <= hi:
                break
            q = int(np.argmin(loads))
            if q == p or loads[q] + w[g] >= loads[p] - w[g]:
                break  # no receiver this move would actually help
            move_g.append(int(g))
            move_to.append(q)
            loads[p] -= w[g]
            loads[q] += w[g]
    return (
        np.asarray(move_g, dtype=np.int64),
        np.asarray(move_to, dtype=np.int64),
    )


def setup_rebalance_program(machine: Machine, mesh: UnstructuredMesh, seed: int = 0, **kwargs):
    """Euler program partitioned by RCB: the campaign's starting state."""
    prog = setup_euler_program(machine, mesh, seed=seed, **kwargs)
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"][: mesh.ndim])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    return prog


def run_rebalance_campaign(
    mesh: UnstructuredMesh,
    n_procs: int,
    epochs: int,
    sweeps: int = 1,
    incremental: bool = True,
    seed: int = 0,
    slack: float = 0.05,
    fault_plan=None,
    **program_kwargs,
):
    """Drive ``epochs`` rebalance/remap/sweep rounds.

    ``incremental=False`` builds each epoch's remap schedule from
    scratch over every element (``build_remap_schedule``'s O(N) path);
    ``incremental=True`` derives it from the move delta
    (:func:`~repro.chaos.remap.patch_remap_schedule`).  Both modes apply
    the *same* ``repartition_stable``-produced distribution, so machine
    state outside the remap phase and every array's contents are
    bit-identical between them.  ``fault_plan`` (a
    :class:`~repro.guard.faults.FaultPlan`) is installed on the machine
    before any work runs, so the remap fault matrix can target both the
    setup redistribution and the per-epoch patched remaps.  Returns
    ``(machine, program, moves_per_epoch)``.
    """
    machine = Machine(n_procs)
    if fault_plan is not None:
        fault_plan.install(machine)
    prog = setup_rebalance_program(machine, mesh, seed=seed, **program_kwargs)
    loop = euler_edge_loop(mesh)
    prog.forall(loop, n_times=sweeps)
    moves_per_epoch: list[int] = []
    for epoch in range(epochs):
        w = drifting_weights(mesh, epoch, seed=seed)
        dist = prog.decomps["reg"].distribution
        move_g, move_to = rebalance_moves(dist, w, slack=slack)
        moves_per_epoch.append(int(move_g.size))
        if incremental:
            prog.redistribute("reg", moved=(move_g, move_to))
        else:
            new_dist, _ = repartition_stable(dist, move_g, move_to)
            prog.redistribute("reg", new_dist)
        prog.forall(loop, n_times=sweeps)
    return machine, prog, moves_per_epoch
