"""Communication schedules: the central PARTI/CHAOS data structure.

A :class:`CommSchedule` records, for one access pattern against one
distribution, everything needed to move off-processor data:

* ``send_lists[(q, p)]`` -- local offsets on owner ``q`` of the elements
  requester ``p`` needs (what ``q`` packs and sends to ``p``), and
* ``recv_slots[(q, p)]`` -- ghost-buffer slots on ``p`` where those
  elements land, in wire order.

The same schedule drives data in both directions: ``gather`` prefetches
off-processor data into ghost buffers before an executor runs (reads),
and ``scatter``/``scatter_op`` pushes ghost-buffer contributions back to
the owners afterwards (writes / reductions) -- PARTI's
``gather_exchange`` / ``scatter_op`` pair.

A schedule is *bound to a distribution signature*: applying it to an
array whose distribution has changed since inspection is a hard error
(this is exactly the staleness the paper's reuse check prevents, so the
runtime enforces it defensively too).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine


class CommSchedule:
    """Schedule for gathering/scattering one access pattern's ghost data."""

    def __init__(
        self,
        machine: Machine,
        dist_signature: tuple,
        send_lists: dict[tuple[int, int], np.ndarray],
        recv_slots: dict[tuple[int, int], np.ndarray],
        ghost_sizes: list[int],
        costs: ChaosCosts = DEFAULT_COSTS,
    ):
        n = machine.n_procs
        if len(ghost_sizes) != n:
            raise ValueError(f"expected {n} ghost sizes, got {len(ghost_sizes)}")
        if set(send_lists) != set(recv_slots):
            raise ValueError("send_lists and recv_slots must cover the same pairs")
        for (q, p), sl in send_lists.items():
            if not (0 <= q < n and 0 <= p < n):
                raise ValueError(f"processor pair ({q}, {p}) out of range")
            rs = recv_slots[(q, p)]
            if len(sl) != len(rs):
                raise ValueError(
                    f"pair ({q}, {p}): {len(sl)} sends but {len(rs)} recv slots"
                )
            if len(rs) and (rs.min() < 0 or rs.max() >= ghost_sizes[p]):
                raise ValueError(
                    f"pair ({q}, {p}): recv slot out of range [0, {ghost_sizes[p]})"
                )
        self.machine = machine
        self.dist_signature = dist_signature
        self.send_lists = {k: np.asarray(v, dtype=np.int64) for k, v in send_lists.items()}
        self.recv_slots = {k: np.asarray(v, dtype=np.int64) for k, v in recv_slots.items()}
        self.ghost_sizes = [int(s) for s in ghost_sizes]
        self.costs = costs

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        return self.machine.n_procs

    def message_count(self) -> int:
        """Number of non-empty point-to-point messages per gather."""
        return sum(
            1 for (q, p), sl in self.send_lists.items() if len(sl) and q != p
        )

    def element_count(self) -> int:
        """Total off-processor elements moved per gather."""
        return sum(len(sl) for (q, p), sl in self.send_lists.items() if q != p)

    def ghost_total(self) -> int:
        return sum(self.ghost_sizes)

    def _check_array(self, arr: DistArray) -> None:
        if arr.distribution.signature() != self.dist_signature:
            raise ValueError(
                f"schedule is stale: built for distribution signature "
                f"{self.dist_signature}, array {arr.name!r} now has "
                f"{arr.distribution.signature()}"
            )
        if arr.machine is not self.machine:
            raise ValueError("schedule and array live on different machines")

    def _check_ghosts(self, ghosts: list[np.ndarray], itemsize: int) -> None:
        if len(ghosts) != self.n_procs:
            raise ValueError(
                f"expected {self.n_procs} ghost buffers, got {len(ghosts)}"
            )
        for p, buf in enumerate(ghosts):
            if buf.shape != (self.ghost_sizes[p],):
                raise ValueError(
                    f"ghost buffer for processor {p} has shape {buf.shape}, "
                    f"schedule needs ({self.ghost_sizes[p]},)"
                )

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def gather(self, arr: DistArray, ghosts: list[np.ndarray]) -> None:
        """Prefetch off-processor data into ghost buffers (one phase).

        For every pair ``(q, p)``: owner ``q`` packs
        ``arr.local(q)[send_lists]`` and requester ``p`` stores the wire
        data at ``ghosts[p][recv_slots]``.  Charges packing/unpacking
        memory traffic and the message exchange.
        """
        self._check_array(arr)
        self._check_ghosts(ghosts, arr.itemsize)
        m = self.machine
        pack = np.zeros(self.n_procs)
        unpack = np.zeros(self.n_procs)
        wires: dict[tuple[int, int], int] = {}
        for (q, p), sl in self.send_lists.items():
            if not len(sl):
                continue
            data = arr.local(q)[sl]
            ghosts[p][self.recv_slots[(q, p)]] = data
            pack[q] += self.costs.pack_unpack_mem * len(sl)
            unpack[p] += self.costs.pack_unpack_mem * len(sl)
            wires[(q, p)] = len(sl) * arr.itemsize
        m.charge_compute_all(mem=list(pack))
        m.exchange(wires)
        m.charge_compute_all(mem=list(unpack))

    def scatter(self, ghosts: list[np.ndarray], arr: DistArray) -> None:
        """Reverse movement, overwrite semantics: ghost copies are sent
        back to the owners and stored (last writer per slot wins in wire
        order -- callers needing determinism use distinct slots)."""
        self._apply_reverse(ghosts, arr, op=None)

    def scatter_op(
        self,
        ghosts: list[np.ndarray],
        arr: DistArray,
        op: Callable,
        flops_per_element: float = 1.0,
    ) -> None:
        """Reverse movement with combining (PARTI scatter_add/op).

        ``op`` is a NumPy ufunc used through ``op.at`` so repeated slots
        accumulate -- the loop-carried reduction semantics the paper
        allows (add, multiply, minimum, maximum).
        """
        if not hasattr(op, "at"):
            raise TypeError(f"op must be a NumPy ufunc with .at, got {op!r}")
        self._apply_reverse(ghosts, arr, op=op, flops_per_element=flops_per_element)

    def _apply_reverse(
        self,
        ghosts: list[np.ndarray],
        arr: DistArray,
        op: Callable | None,
        flops_per_element: float = 1.0,
    ) -> None:
        self._check_array(arr)
        self._check_ghosts(ghosts, arr.itemsize)
        m = self.machine
        pack = np.zeros(self.n_procs)
        unpack = np.zeros(self.n_procs)
        combine = np.zeros(self.n_procs)
        wires: dict[tuple[int, int], int] = {}
        for (q, p), sl in self.send_lists.items():
            if not len(sl):
                continue
            data = ghosts[p][self.recv_slots[(q, p)]]
            if op is None:
                arr.local(q)[sl] = data
            else:
                op.at(arr.local(q), sl, data)
                combine[q] += flops_per_element * len(sl)
            pack[p] += self.costs.pack_unpack_mem * len(sl)
            unpack[q] += self.costs.pack_unpack_mem * len(sl)
            wires[(p, q)] = len(sl) * arr.itemsize
        m.charge_compute_all(mem=list(pack))
        m.exchange(wires)
        m.charge_compute_all(mem=list(unpack), flops=list(combine))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommSchedule(procs={self.n_procs}, messages={self.message_count()}, "
            f"elements={self.element_count()}, ghosts={self.ghost_total()})"
        )
