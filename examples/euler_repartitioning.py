#!/usr/bin/env python
"""Unstructured Euler edge sweep: BLOCK vs RCB vs RSB partitioning.

Reproduces the paper's Figure 4 pipeline on a synthetic 3-D mesh and
prints a Table-2-style phase breakdown for three partitioning choices,
showing the trade-off the paper demonstrates: irregular distributions
cost a partitioning+remap phase up front but repay it across the
100-iteration executor; RSB partitions best but costs by far the most
to compute.

    python examples/euler_repartitioning.py [n_nodes] [n_procs]
"""

import sys

from repro.bench import PHASE_NAMES, run_euler_experiment
from repro.partitioners import edge_cut, get_partitioner, load_imbalance
from repro.partitioners.base import PartitionProblem
from repro.workloads import generate_mesh


def main(n_nodes=3000, n_procs=16):
    print(f"Generating {n_nodes}-node 3-D unstructured mesh ...")
    mesh = generate_mesh(n_nodes, seed=7)
    print(f"  {mesh.n_nodes} nodes, {mesh.n_edges} edges (randomly numbered)\n")

    prob = PartitionProblem(
        mesh.n_nodes, edges=mesh.edges, coords=mesh.coords
    )
    header = f"{'variant':<8} " + " ".join(f"{p[:9]:>10}" for p in PHASE_NAMES)
    print(header + f" {'total':>10} {'edgecut':>8} {'imbal':>6}")
    print("-" * len(header + "  total  edgecut  imbal"))
    for name in ("BLOCK", "RCB", "RSB"):
        res = run_euler_experiment(
            mesh, n_procs, partitioner=name, iterations=100
        )
        owners = get_partitioner(name if name != "BLOCK" else "BLOCK").partition(
            prob, n_procs
        ).owner_map
        cut = edge_cut(mesh.edges, owners)
        imbal = load_imbalance(owners, n_procs)
        cells = " ".join(f"{res.phase(p):>10.3f}" for p in PHASE_NAMES)
        print(
            f"{name:<8} {cells} {res.total:>10.3f} {cut:>8} {imbal:>6.2f}"
        )
    print(
        "\nReading the table: BLOCK skips partitioning but its executor"
        "\npays for the cut edges every iteration; RCB buys a 2-3x better"
        "\nexecutor for a tiny partitioning cost; RSB's eigen-partitioner"
        "\nis orders of magnitude more expensive and only pays off when"
        "\nthe executor runs many more iterations."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
