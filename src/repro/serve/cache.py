"""Self-healing content-addressed result cache.

One JSON file per finished job, named by its
:func:`~repro.serve.config.config_key`.  Entries are CRC-guarded
envelopes (the checkpoint pattern applied to results)::

    {"format": "repro-serve-result", "version": 1,
     "crc": <crc32 of canonical payload JSON>, "payload": {...}}

Writes are torn-write safe (tmp + ``os.replace``).  Reads verify the
envelope before trusting it; anything damaged -- truncation, bit rot,
a non-JSON file squatting on the name -- is moved aside to
``<path>.quarantine`` and reported as a miss, so the service recomputes
and re-persists transparently.  The cache never takes the service down
and never serves bytes that fail their checksum.
"""

from __future__ import annotations

import json
import os
import zlib

_FORMAT = "repro-serve-result"
_VERSION = 1


def _payload_crc(payload: dict) -> int:
    return zlib.crc32(json.dumps(payload, sort_keys=True).encode())


class ResultCache:
    """Content-addressed, CRC-guarded result store under one directory."""

    def __init__(self, root: str):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: structured record of every quarantine: {"key", "path", "reason"}
        self.quarantined: list[dict] = []

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The cached payload for ``key``, or ``None`` (miss/damage)."""
        path = self.path(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            with open(path, "rb") as f:
                env = json.loads(f.read().decode())
            if not isinstance(env, dict) or env.get("format") != _FORMAT:
                raise ValueError("not a serve result envelope")
            if env.get("version") != _VERSION:
                raise ValueError(f"unsupported version {env.get('version')!r}")
            payload = env["payload"]
            if _payload_crc(payload) != env["crc"]:
                raise ValueError("payload failed its CRC")
        except (OSError, ValueError, KeyError, UnicodeDecodeError) as exc:
            self._quarantine(key, path, exc)
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> str:
        """Persist ``payload`` under ``key`` atomically; returns the path."""
        path = self.path(key)
        env = {
            "format": _FORMAT,
            "version": _VERSION,
            "crc": _payload_crc(payload),
            "payload": payload,
        }
        tmp = f"{path}.tmp{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                json.dump(env, f, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return path

    # ------------------------------------------------------------------
    def _quarantine(self, key: str, path: str, exc: Exception) -> None:
        try:
            os.replace(path, f"{path}.quarantine")
        except OSError:
            pass  # already moved/removed by someone else
        self.quarantined.append(
            {"key": key, "path": path, "reason": f"{type(exc).__name__}: {exc}"}
        )

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "entries": len(
                [n for n in os.listdir(self.root) if n.endswith(".json")]
            ),
        }
