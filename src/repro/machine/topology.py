"""Interconnect topologies for the simulated machine.

A topology answers one question for the cost model: how many hops does a
message from processor ``src`` to processor ``dst`` traverse?  The iPSC/860
is a binary hypercube, so that is the default everywhere in the
reproduction; ring and 2-D mesh variants exist for ablations, and a
fully-connected topology gives the idealized 1-hop-everywhere model.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class Topology(ABC):
    """Abstract interconnect: hop counts between pairs of processors."""

    def __init__(self, n_procs: int):
        if n_procs < 1:
            raise ValueError(f"need at least one processor, got {n_procs}")
        self.n_procs = int(n_procs)

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between processors ``src`` and ``dst``."""

    @abstractmethod
    def diameter(self) -> int:
        """Maximum hop count over all processor pairs."""

    def _check(self, *procs: int) -> None:
        for p in procs:
            if not 0 <= p < self.n_procs:
                raise ValueError(
                    f"processor id {p} out of range [0, {self.n_procs})"
                )

    def neighbors(self, p: int) -> list[int]:
        """Processors exactly one hop from ``p`` (generic, O(P))."""
        self._check(p)
        return [q for q in range(self.n_procs) if q != p and self.hops(p, q) == 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_procs={self.n_procs})"


class HypercubeTopology(Topology):
    """Binary hypercube: the iPSC/860 interconnect.

    Processor ids are node labels; the hop count between two nodes is the
    Hamming distance of their ids.  The processor count must be a power of
    two, as on the real machine.
    """

    def __init__(self, n_procs: int):
        super().__init__(n_procs)
        if n_procs & (n_procs - 1):
            raise ValueError(
                f"hypercube needs a power-of-two processor count, got {n_procs}"
            )
        self.dim = n_procs.bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return (src ^ dst).bit_count()

    def diameter(self) -> int:
        return self.dim

    def neighbors(self, p: int) -> list[int]:
        self._check(p)
        return [p ^ (1 << d) for d in range(self.dim)]


class RingTopology(Topology):
    """Bidirectional ring; hop count is the shorter way around."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.n_procs - d)

    def diameter(self) -> int:
        return self.n_procs // 2


class FullyConnectedTopology(Topology):
    """Every pair one hop apart: the idealized 'flat' network."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1

    def diameter(self) -> int:
        return 0 if self.n_procs == 1 else 1


class MeshTopology(Topology):
    """2-D mesh with near-square factorization; Manhattan hop distance."""

    def __init__(self, n_procs: int):
        super().__init__(n_procs)
        r = int(math.isqrt(n_procs))
        while n_procs % r:
            r -= 1
        self.rows = r
        self.cols = n_procs // r

    def _coords(self, p: int) -> tuple[int, int]:
        return divmod(p, self.cols)

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)


_TOPOLOGIES = {
    "hypercube": HypercubeTopology,
    "ring": RingTopology,
    "full": FullyConnectedTopology,
    "mesh": MeshTopology,
}


def make_topology(name: str, n_procs: int) -> Topology:
    """Construct a topology by name: hypercube | ring | full | mesh."""
    try:
        cls = _TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(_TOPOLOGIES)}"
        ) from None
    return cls(n_procs)
