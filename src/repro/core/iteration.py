"""Loop-iteration partitioning (Section 4.3).

"Our current default is to employ a scheme that places a loop iteration
on the processor that is the home of the largest number of the
iteration's distributed array references" -- the *almost-owner-computes*
rule.  The classic *owner-computes* rule (iteration follows the owner of
the first left-hand side) is provided for the ablation bench.

The modeled cost follows the real implementation: iterations start
block-distributed; each processor translates its iterations' references
(indirection values are aligned with the iteration space), votes, and
iterations whose home differs from their current holder are shipped --
an exchange of iteration records.

Wall-clock performance notes (simulated charges are unaffected): the
per-reference ``owner()`` gathers are memoized per (distribution
signature, indirection-array content version) in a weak cache, so
re-inspecting the same loop -- the paper's no-reuse scenario does this
every time step -- never re-translates unchanged indirection arrays; the
majority vote runs directly over the per-reference owner rows without
materializing a stacked ``(k, n)`` matrix; and the grouping of
iterations by home processor is one direct ``np.sort`` over composite
keys instead of an indirect ``argsort``.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.transcache import ChargeLog, PartitionEntry, TranslationCache
from repro.core import cachekey
from repro.core.forall import ForallLoop
from repro.distribution.distarray import DistArray
from repro.distribution.regular import BlockDistribution
from repro.machine.machine import Machine

#: bytes per iteration record when iterations are shipped to their home
ITERATION_RECORD_BYTES = 16

#: indirection DistArray -> {dist signature: (content version, owners)}
_INDIRECT_OWNER_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Distribution -> {n_iterations: owners of arange(n)}
_DIRECT_OWNER_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


@dataclass
class IterationPartition:
    """Assignment of loop iterations to processors.

    ``iters`` is the per-processor list view; when built by
    :func:`partition_iterations` the canonical storage is flat
    (``flat`` + ``bounds``, CSR like ``FlatRefs``) and ``iters[p]`` is a
    zero-copy slice ``flat[bounds[p]:bounds[p+1]]``.
    """

    n_iterations: int
    iters: list[np.ndarray]
    method: str
    flat: np.ndarray | None = field(default=None, repr=False)
    bounds: np.ndarray | None = field(default=None, repr=False)

    def counts(self) -> list[int]:
        return [len(it) for it in self.iters]

    def iters_flat(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat CSR form ``(values, bounds)`` of ``iters`` (cached)."""
        if self.flat is None:
            self.bounds = np.zeros(len(self.iters) + 1, dtype=np.int64)
            np.cumsum([it.size for it in self.iters], out=self.bounds[1:])
            self.flat = (
                np.concatenate(self.iters)
                if self.iters and self.bounds[-1]
                else np.empty(0, dtype=np.int64)
            )
        return self.flat, self.bounds

    def owner_of(self) -> np.ndarray:
        """Dense iteration -> processor map (one scatter, for tests)."""
        out = np.empty(self.n_iterations, dtype=np.int64)
        flat, bounds = self.iters_flat()
        out[flat] = np.repeat(
            np.arange(len(self.iters), dtype=np.int64), np.diff(bounds)
        )
        return out


def _ref_owners(
    loop: ForallLoop, arrays: dict[str, DistArray], refs
) -> list[np.ndarray]:
    """Home processor of each iteration's target element, per ArrayRef.

    One owner row per reference, read through two weak caches so
    repeated inspections of unmutated indirection arrays (and repeated
    references through the same indirection, e.g. ``x(edge1(i))`` and
    ``y(edge1(i))`` with identically-distributed ``x``/``y``) reuse the
    same gather.  Rows are cached arrays: callers must not mutate them.
    """
    n = loop.n_iterations
    rows = []
    for ref in refs:
        dist = arrays[ref.array].distribution
        if ref.index is None:
            per_dist = _DIRECT_OWNER_CACHE.setdefault(dist, {})
            row = per_dist.get(n)
            if row is None:
                row = np.asarray(
                    dist.owner(np.arange(n, dtype=np.int64)), dtype=np.int64
                )
                per_dist[n] = row
        else:
            ind = arrays[ref.index]
            if ind.size != n:
                raise ValueError(
                    f"indirection array {ref.index!r} has size {ind.size}, "
                    f"loop {loop.name!r} iterates {n}"
                )
            # (distribution signature, content version) keying from the
            # shared repro.core.cachekey vocabulary; one row per
            # signature, replaced when the indirection mutates
            sig = cachekey.dist_key(dist)
            per_ind = _INDIRECT_OWNER_CACHE.setdefault(ind, {})
            hit = per_ind.get(sig)
            if hit is not None and hit[0] == ind.version:
                row = hit[1]
            else:
                targets = np.asarray(ind.global_view(), dtype=np.int64)
                row = np.asarray(dist.owner(targets), dtype=np.int64)
                per_ind[sig] = (ind.version, row)
        rows.append(row)
    return rows


def _majority_owner(rows: list[np.ndarray]) -> np.ndarray:
    """Majority vote over k owner rows of length n, ties -> lowest id.

    Equivalent to building the dense (n, n_procs) vote matrix and taking
    a row-wise argmax, but O(n * k^2) with k = references per iteration
    (a handful) instead of O(n * P) memory and scattered adds.  Each
    position's multiplicity comes from one broadcast k x k comparison
    (no per-row sort); among the positions attaining the row maximum the
    smallest owner id wins — the dense argmax's tie semantics.  Vote
    counts fit uint8 (k < 256 always holds in practice), keeping the
    count block an eighth of the old int64 footprint.
    """
    k = len(rows)
    if k == 1:
        return rows[0].copy()
    if k == 2:
        # both agree -> that owner; split vote -> argmax tie -> lowest id
        return np.minimum(rows[0], rows[1])
    n = rows[0].size
    count_dtype = np.uint8 if k < 256 else np.int64
    counts = np.ones((k, n), dtype=count_dtype)
    for j in range(k):
        for m in range(j + 1, k):
            eq = rows[j] == rows[m]
            counts[j] += eq
            counts[m] += eq
    cmax = counts[0].copy()
    for j in range(1, k):
        np.maximum(cmax, counts[j], out=cmax)
    big = np.iinfo(np.int64).max
    winner = np.full(n, big, dtype=np.int64)
    for j in range(k):
        np.minimum(winner, np.where(counts[j] == cmax, rows[j], big), out=winner)
    return winner


def method_refs(loop: ForallLoop, method: str):
    """The ArrayRefs a partition method votes over (shared with the
    incremental re-vote in ``repro.adapt`` -- both must select
    identically for patched partitions to equal fresh ones)."""
    if method == "almost_owner":
        return loop.refs()
    if method == "owner_computes":
        return [loop.statements[0].lhs]
    raise ValueError(
        f"unknown iteration partition method {method!r}; choose "
        "almost_owner | owner_computes"
    )


def partition_from_home(
    home: np.ndarray, n_procs: int, method: str
) -> IterationPartition:
    """Group iterations by home processor, ascending iteration index
    within each home: composite keys ``home * n + i`` direct-sorted give
    the stable grouping permutation without an indirect argsort.  Used
    by :func:`partition_iterations` and the incremental patcher (which
    must reproduce this grouping exactly)."""
    n = home.size
    order = np.sort(home * np.int64(n) + np.arange(n, dtype=np.int64)) % n
    counts = np.bincount(home, minlength=n_procs)
    bounds = np.zeros(n_procs + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    iters = [order[bounds[p] : bounds[p + 1]] for p in range(n_procs)]
    return IterationPartition(n, iters, method, flat=order, bounds=bounds)


def partition_cache_key(
    loop: ForallLoop,
    arrays: dict[str, DistArray],
    method: str,
    n_procs: int,
) -> tuple[tuple, tuple]:
    """``(slot, version)`` key of one loop's iteration partition.

    The partition is a pure function of the voted references' owner
    rows, so the slot pins the structure (loop, size, machine width,
    method, reference shape) and the version pins the content: one
    :func:`repro.core.cachekey.source_key` token per voted reference.
    ``run_inspector`` folds the full key into its localize keys -- equal
    partition keys imply identical iteration order, which localize's
    reference streams depend on.
    """
    refs = method_refs(loop, method)
    slot = (
        "partition",
        loop.name,
        loop.n_iterations,
        n_procs,
        method,
        tuple((ref.array, ref.index) for ref in refs),
    )
    version = tuple(cachekey.source_key(arrays, ref) for ref in refs)
    return slot, version


def partition_iterations(
    machine: Machine,
    loop: ForallLoop,
    arrays: dict[str, DistArray],
    method: str = "almost_owner",
    costs: ChaosCosts = DEFAULT_COSTS,
    cache: TranslationCache | None = None,
    cache_key: "tuple[tuple, tuple] | None" = None,
) -> IterationPartition:
    """Partition ``loop``'s iterations among the machine's processors.

    ``method`` is ``"almost_owner"`` (paper default: majority vote over
    all the iteration's references, ties to the lowest processor) or
    ``"owner_computes"`` (home of the first statement's left-hand side).

    With a :class:`TranslationCache`, an unchanged loop (same
    :func:`partition_cache_key`) skips the vote/group kernels and
    replays the cold run's simulated charges; ``cache_key`` may be
    passed precomputed (``run_inspector`` shares it with its localize
    keys) or is derived here.
    """
    n = loop.n_iterations
    n_procs = machine.n_procs
    refs = method_refs(loop, method)
    if n == 0:
        empty = [np.empty(0, dtype=np.int64) for _ in range(n_procs)]
        return IterationPartition(
            0,
            empty,
            method,
            flat=np.empty(0, dtype=np.int64),
            bounds=np.zeros(n_procs + 1, dtype=np.int64),
        )
    if cache is not None:
        if cache_key is None:
            cache_key = partition_cache_key(loop, arrays, method, n_procs)
        entry = cache.get(*cache_key)
        if entry is not None:
            entry.charges.replay(machine)
            iters = [
                entry.flat[entry.bounds[p] : entry.bounds[p + 1]]
                for p in range(n_procs)
            ]
            return IterationPartition(
                n, iters, method, flat=entry.flat, bounds=entry.bounds
            )

    # cached per-reference owner rows feed the vote directly: no stacked
    # (k, n) owner matrix, no re-gather for repeated indirections
    rows = _ref_owners(loop, arrays, refs)
    home = _majority_owner(rows)  # ties -> lowest proc

    part = partition_from_home(home, n_procs, method)

    sink = machine if cache is None else ChargeLog(machine)
    # cost: each processor examines its block of iterations -- one
    # translation probe + vote update per reference
    init = BlockDistribution(n, n_procs)
    per_proc_iter = init.local_sizes().astype(np.float64)
    sink.charge_compute_all(
        iops=per_proc_iter * len(refs) * (costs.hash_lookup + 2.0)
    )
    # ship iterations whose home differs from their initial block holder
    init_holder = np.asarray(init.owner(np.arange(n, dtype=np.int64)))
    moved = np.zeros((n_procs, n_procs), dtype=np.int64)
    np.add.at(moved, (init_holder, home), 1)
    np.fill_diagonal(moved, 0)
    move_p, move_q = np.nonzero(moved)
    sink.exchange(
        src=move_p,
        dst=move_q,
        nbytes=moved[move_p, move_q] * ITERATION_RECORD_BYTES,
    )
    sink.barrier()
    if cache is not None:
        flat, bounds = part.iters_flat()
        cache.put(cache_key[0], cache_key[1], PartitionEntry(sink, flat, bounds))
    return part
