"""The executor: carry out communication and computation (Phase E).

Per execution of a loop's executor:

1. **gather** -- for every pattern the loop reads, prefetch off-processor
   elements into the pattern's ghost buffers (one schedule application);
2. **compute** -- each processor evaluates every statement vectorized
   over its iterations, reading from ``[local segment | ghost buffer]``
   through the localized reference lists; reduction contributions
   accumulate into per-pattern staging (local part + ghost part);
3. **scatter** -- staged off-processor contributions travel back through
   the same schedules and combine at the owners (``scatter_op``), and
   assigned off-processor values are written back (``scatter``).

The machine is charged the loop's declared flops, the indexed-load
memory traffic, and the schedule communication; the Python evaluation
itself is just the simulation vehicle.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.gather_scatter import REDUCTION_OPS
from repro.chaos.merge import gather_merged, scatter_op_merged
from repro.core.forall import Reduce
from repro.core.inspector import InspectorProduct
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine

#: additive identity per reduction op, for staging buffers
_IDENTITY = {"add": 0.0, "multiply": 1.0, "min": np.inf, "max": -np.inf}


def run_executor(
    machine: Machine,
    product: InspectorProduct,
    arrays: dict[str, DistArray],
    n_times: int = 1,
    overhead_factor: float = 1.0,
    merge_communication: bool = False,
    guard: str = "off",
    guard_log: list | None = None,
) -> None:
    """Execute a loop ``n_times`` using saved inspector results.

    ``overhead_factor`` scales the charged compute cost; the compiled
    path passes a value slightly above 1 to model compiler-generated
    (vs. hand-tuned) loop bodies.  ``merge_communication`` applies
    PARTI's schedule-merging optimization: all gather (and all
    reduction-scatter) payloads for one processor pair travel in a
    single message per phase instead of one per access pattern.

    ``guard`` selects post-gather content verification (see
    ``repro.guard.invariants``): at ``"full"`` -- or at any non-off
    level while a fault plan is installed on the machine -- every
    gathered ghost value is checked against the owner's current value;
    a divergence is repaired with one uncharged data-only re-gather
    (recorded in ``guard_log``) or, if irreparable, raised as an
    ``InvariantViolation``.  The check and the repair are host-level:
    they never charge the simulated machine, so guarded runs keep
    bit-identical simulated numbers.
    """
    if n_times < 0:
        raise ValueError(f"negative execution count {n_times}")
    if overhead_factor < 1.0:
        raise ValueError("overhead_factor models slowdown; must be >= 1")
    _check_fresh(product, arrays)
    for _ in range(n_times):
        with machine.obs.span("executor.execute", loop=product.loop.name):
            _execute_once(
                machine,
                product,
                arrays,
                overhead_factor,
                merge_communication,
                guard=guard,
                guard_log=guard_log,
            )


def _check_fresh(product: InspectorProduct, arrays: dict[str, DistArray]) -> None:
    """Defensive staleness check: executing with changed distributions is
    a correctness bug the reuse machinery exists to prevent."""
    for name, sig in product.dist_signatures.items():
        arr = arrays.get(name)
        if arr is None:
            raise KeyError(f"loop {product.loop.name!r} array {name!r} is unbound")
        if arr.distribution.signature() != sig:
            raise ValueError(
                f"stale inspector: array {name!r} was redistributed after "
                f"loop {product.loop.name!r} was inspected"
            )


class _PatternSpace:
    """Flat *combined space* of one access pattern.

    Per processor the executor reads/writes ``[local segment | ghost
    buffer]``; concatenating those per-processor blocks over all
    processors gives one flat combined space.  Localized reference
    values are per-processor offsets into the block, so adding the
    block's combined-space offset (indexed by each reference's
    processor) turns a pattern's flat reference list into direct
    combined-space positions — all processors' loop bodies then run as
    single vector ops.

    ``local_sel``/``ghost_sel`` map the ``DistArray`` flat backing and
    the flat ghost backing into combined-space positions (both are
    offset-shifted ``arange``s, precomputed once per pattern per
    execution).
    """

    def __init__(self, localized, ghosts) -> None:
        local_sizes = np.asarray(localized.local_sizes, dtype=np.int64)
        ghost_off = ghosts.offsets
        local_off = np.zeros(local_sizes.size + 1, dtype=np.int64)
        np.cumsum(local_sizes, out=local_off[1:])
        # combined-space offset of processor p's block
        self.offsets = local_off + ghost_off
        self.total = int(self.offsets[-1])
        n_local = int(local_off[-1])
        n_ghost = int(ghost_off[-1])
        # backing position l of processor p -> combined local_off[p]+ghost_off[p]+l-local_off[p]
        rep_local = np.repeat(
            np.arange(local_sizes.size, dtype=np.int64), local_sizes
        )
        self.local_sel = np.arange(n_local, dtype=np.int64) + ghost_off[rep_local]
        ghost_counts = np.diff(ghost_off)
        rep_ghost = np.repeat(
            np.arange(local_sizes.size, dtype=np.int64), ghost_counts
        )
        self.ghost_sel = np.arange(n_ghost, dtype=np.int64) + local_off[1:][rep_ghost]

    def refs(self, localized, ref_pid: np.ndarray) -> np.ndarray:
        """Combined-space position of every localized reference."""
        return localized.refs_flat + self.offsets[ref_pid]


def _patched_space(old_space: _PatternSpace, old_ghost_off, ghosts) -> _PatternSpace:
    """Combined space for a grown ghost layout, derived from the old one.

    Retired slots are holes (positions unchanged) and appends only grow
    per-processor ghost regions, so the new space is the old one with
    each processor's block shifted by its ghost growth: ``offsets`` and
    ``local_sel`` are vector increments of the saved arrays; only
    ``ghost_sel`` (whose length changed) is re-derived.  Element-equal
    to a freshly constructed :class:`_PatternSpace`.
    """
    sp = _PatternSpace.__new__(_PatternSpace)
    new_go = ghosts.offsets
    local_off = old_space.offsets - old_ghost_off
    sp.offsets = local_off + new_go
    sp.total = int(sp.offsets[-1])
    d = new_go - old_ghost_off
    local_sizes = np.diff(local_off)
    rep_local = np.repeat(np.arange(local_sizes.size, dtype=np.int64), local_sizes)
    sp.local_sel = old_space.local_sel + d[rep_local]
    ghost_counts = np.diff(new_go)
    rep_ghost = np.repeat(np.arange(local_sizes.size, dtype=np.int64), ghost_counts)
    sp.ghost_sel = np.arange(int(new_go[-1]), dtype=np.int64) + local_off[1:][rep_ghost]
    return sp


def patch_exec_caches(
    old_pat,
    new_pat,
    changed_pos: np.ndarray,
    partition_changed: bool,
    space: _PatternSpace | None = None,
) -> _PatternSpace | None:
    """Carry a pattern's cached executor arrays across an incremental patch.

    The incremental inspector (``repro.adapt``) preserves every
    untouched localized reference and keeps retired ghost slots in place,
    so a patched pattern's ``exec_space``/``exec_refs`` differ from the
    saved ones only at the patch's delta positions (plus a per-processor
    offset shift when slots were appended).  This updates exactly those
    positions instead of dropping the caches and rebuilding O(refs)
    arrays at the next execution:

    * unchanged ghost layout -- the space object is reused outright;
      grown layout -- it is shift-patched (:func:`_patched_space`);
    * ``exec_refs`` is carried whenever the iteration partition is
      unchanged: offset-shifted per processor if the layout grew, then
      overwritten at ``changed_pos`` from the new localized values;
      a changed partition permutes reference order globally, so refs are
      left to the executor's lazy rebuild (the space still carries).

    ``space`` shares one patched space among coalesced members of a
    group; the return value is that shared space (``None`` when nothing
    was cached).  Host-level only: never charges the machine, and the
    executor produces bit-identical results and charges either way.
    """
    old_space = old_pat.exec_space
    if old_space is None and space is None:
        return None
    old_off = old_pat.ghosts.offsets
    new_off = new_pat.ghosts.offsets
    same_layout = np.array_equal(new_off, old_off)
    if space is None:
        space = old_space if same_layout else _patched_space(
            old_space, old_off, new_pat.ghosts
        )
    new_pat.exec_space = space
    refs_old = old_pat.exec_refs
    if refs_old is None or partition_changed:
        return space
    if same_layout:
        refs = refs_old if not changed_pos.size else refs_old.copy()
    else:
        bounds = np.asarray(new_pat.localized.ref_bounds, dtype=np.int64)
        doff = (new_off - old_off)[:-1]
        refs = refs_old + np.repeat(doff, np.diff(bounds))
    if changed_pos.size:
        bounds = np.asarray(new_pat.localized.ref_bounds, dtype=np.int64)
        pid = np.searchsorted(bounds, changed_pos, side="right") - 1
        refs[changed_pos] = new_pat.localized.refs_flat[changed_pos] + space.offsets[pid]
    new_pat.exec_refs = refs
    return space


def _verify_gathers(machine, product, arrays, gather_items, guard_log) -> None:
    """Content-check every gather; repair divergences with an uncharged
    re-gather (fault injection suspended so the repair is clean)."""
    from repro.guard.errors import InvariantViolation
    from repro.guard.faults import suspended
    from repro.guard.invariants import gather_divergence

    for sched, arr, ghosts, pat in gather_items:
        bad = gather_divergence(pat, arr)
        if not bad.size:
            continue
        with suspended(machine):
            sched._move_gather(arr, ghosts)
        still = gather_divergence(pat, arr)
        if guard_log is not None:
            guard_log.append(
                {
                    "event": "gather_divergence",
                    "loop": product.loop.name,
                    "array": pat.array,
                    "n_bad": int(bad.size),
                    "recovered": not still.size,
                }
            )
        if still.size:
            raise InvariantViolation(
                f"gather for array {pat.array!r} of loop "
                f"{product.loop.name!r} diverges from owner data at "
                f"{int(still.size)} ghost position(s) and a clean "
                "re-gather did not repair it"
            )


def _execute_once(
    machine: Machine,
    product: InspectorProduct,
    arrays: dict[str, DistArray],
    overhead: float,
    merge_communication: bool = False,
    guard: str = "off",
    guard_log: list | None = None,
) -> None:
    loop = product.loop
    n_procs = machine.n_procs
    iter_flat, iter_bounds = product.iteration_partition.iters_flat()
    n_it = np.diff(iter_bounds)
    total_iters = int(iter_flat.size)
    #: processor owning each reference position (flat reference lists of
    #: every pattern share the iteration bounds)
    ref_pid = np.repeat(np.arange(n_procs, dtype=np.int64), n_it)

    read_keys = {(r.array, r.index) for r in loop.read_refs()}
    # 1. gather all read patterns (one gather per distinct schedule --
    # coalesced patterns share a schedule and are fetched once)
    gather_items = []
    seen_schedules: set[int] = set()
    for key in sorted(read_keys, key=str):
        pat = product.patterns[key]
        sid = id(pat.localized.schedule)
        if sid in seen_schedules:
            continue
        seen_schedules.add(sid)
        gather_items.append(
            (pat.localized.schedule, arrays[pat.array], pat.ghosts, pat)
        )
    obs = machine.obs
    with obs.span("executor.gather", n_schedules=len(gather_items)):
        if merge_communication and gather_items:
            gather_merged([(s, a, g) for s, a, g, _ in gather_items])
        else:
            for sched, arr, ghosts, _ in gather_items:
                sched.gather(arr, ghosts)
    # post-gather content verification: at guard "full" always, and at
    # any level while faults are being injected (detection is the point
    # of injecting them; the patch-verify rung does the same).
    # host-level -- charges nothing.
    if gather_items and (guard == "full" or machine.faults is not None):
        with obs.span("guard.verify_gathers", loop=loop.name):
            _verify_gathers(machine, product, arrays, gather_items, guard_log)

    # flat combined-space setup per pattern, cached on the immutable
    # product: reuse scenarios execute the same product once per time
    # step and must not rebuild the selector arrays every time
    def space_of(key) -> _PatternSpace:
        pat = product.patterns[key]
        if pat.exec_space is None:
            pat.exec_space = _PatternSpace(pat.localized, pat.ghosts)
        return pat.exec_space

    def refs_of(key) -> np.ndarray:
        pat = product.patterns[key]
        if pat.exec_refs is None:
            pat.exec_refs = space_of(key).refs(pat.localized, ref_pid)
        return pat.exec_refs

    # combined read arrays: two scatters assemble [local | ghost] blocks
    # of all processors at once (read-only backing access: acquiring it
    # must not perturb the arrays' content versions)
    combined: dict[tuple[str, str | None], np.ndarray] = {}
    for key in read_keys:
        pat = product.patterns[key]
        arr = arrays[pat.array]
        sp = space_of(key)
        comb = np.empty(sp.total, dtype=arr.dtype)
        comb[sp.local_sel] = arr.backing_ro
        comb[sp.ghost_sel] = pat.ghosts.backing
        combined[key] = comb

    # staging for writes, grouped so patterns sharing one (coalesced)
    # schedule accumulate into one staging and scatter once
    write_plan: dict[tuple[str, str | None], str] = {}
    for s in loop.statements:
        key = (s.lhs.array, s.lhs.index)
        kind = s.op if isinstance(s, Reduce) else "assign"
        prev = write_plan.get(key)
        if prev is not None and prev != kind:
            raise ValueError(
                f"loop {loop.name!r} writes pattern {key} with conflicting "
                f"semantics ({prev} vs {kind})"
            )
        write_plan[key] = kind

    group_of: dict[tuple[str, str | None], tuple] = {}
    groups: dict[tuple, tuple] = {}  # gkey -> (pattern key exemplar, kind)
    for key, kind in write_plan.items():
        pat = product.patterns[key]
        gkey = (pat.array, kind, id(pat.localized.schedule))
        group_of[key] = gkey
        prev = groups.get(gkey)
        if prev is not None and prev[1] != kind:  # pragma: no cover - defensive
            raise ValueError("conflicting kinds in one staging group")
        groups.setdefault(gkey, (key, kind))

    staging: dict[tuple, np.ndarray] = {}
    assigned_mask: dict[tuple, np.ndarray] = {}
    for gkey, (key, kind) in groups.items():
        pat = product.patterns[key]
        arr = arrays[pat.array]
        fill = _IDENTITY[kind] if kind != "assign" else 0.0
        staging[gkey] = np.full(space_of(key).total, fill, dtype=arr.dtype)
        if kind == "assign":
            assigned_mask[gkey] = np.zeros(staging[gkey].size, dtype=bool)

    # 2. compute: one vector evaluation per statement over every
    # processor's iterations at once; staging updates are one store (or
    # one ufunc.at) over combined-space positions.  Flat order is
    # processor-major with iteration order within, so duplicate-slot and
    # accumulation semantics match the historical per-processor loop.
    flops = np.zeros(n_procs)
    mem = np.zeros(n_procs)
    n_it_f = n_it.astype(np.float64)
    with obs.span(
        "executor.compute",
        loop=loop.name,
        n_statements=len(loop.statements),
        n_iters=total_iters,
    ):
        for s in loop.statements:
            lhs_key = (s.lhs.array, s.lhs.index)
            with obs.span("executor.statement", array=s.lhs.array):
                operands = [
                    combined[(r.array, r.index)][refs_of((r.array, r.index))]
                    for r in s.reads
                ]
                vals = np.asarray(s.func(*operands))
                if vals.shape != (total_iters,):
                    vals = np.broadcast_to(vals, (total_iters,)).copy()
                gkey = group_of[lhs_key]
                tgt = staging[gkey]
                refs = refs_of(lhs_key)
                if isinstance(s, Reduce):
                    REDUCTION_OPS[s.op].at(tgt, refs, vals)
                else:
                    tgt[refs] = vals
                    assigned_mask[gkey][refs] = True
            flops += s.flops * n_it_f
            mem += 2.0 * (len(s.reads) + 1) * n_it_f

    machine.charge_compute_all(flops=flops * overhead, mem=mem * overhead)

    # 3. merge local staging + scatter ghost staging (once per group):
    # the local part of every processor's staging block is one gather
    # (``local_sel``) aligned with the DistArray backing, so the merge is
    # a single masked store (assign) or one vector combine (reduce); the
    # ghost part (``ghost_sel``) is already in flat ghost-backing layout,
    # so the schedule scatters it with no per-processor splits.
    merged_reduce_items = []
    with obs.span("executor.scatter", n_groups=len(groups)):
        for gkey, (key, kind) in groups.items():
            pat = product.patterns[key]
            arr = arrays[pat.array]
            sp = space_of(key)
            stage = staging[gkey]
            stage_local = stage[sp.local_sel]
            ghost_stage = stage[sp.ghost_sel]
            data = arr.backing_mut()  # one version bump per merged group
            if kind == "assign":
                m = assigned_mask[gkey][sp.local_sel]
                data[m] = stage_local[m]
                # only slots actually assigned may overwrite owner data; we
                # ship staged values for every slot but restrict at the owner
                # by shipping the mask too is overkill at this model fidelity:
                # FORALL semantics forbid partially-assigned ghost patterns,
                # so every ghost slot of an assigned pattern is written.
                pat.localized.schedule.scatter(ghost_stage, arr)
            else:
                op = REDUCTION_OPS[kind]
                op(data, stage_local, out=data)
                if merge_communication:
                    merged_reduce_items.append(
                        (pat.localized.schedule, ghost_stage, arr, op)
                    )
                else:
                    pat.localized.schedule.scatter_op(ghost_stage, arr, op)
            # merge cost: one flop per owned element combined
            machine.charge_compute_all(
                flops=np.asarray(pat.localized.local_sizes, dtype=np.float64)
            )
        if merged_reduce_items:
            scatter_op_merged(merged_reduce_items)
    machine.barrier()
