"""Optional message tracing for the simulated machine.

``MessageTrace`` hooks a machine's ``send``/``exchange`` and records
every point-to-point message; tests use it to assert on communication
*patterns* (who talks to whom, symmetry of request/reply protocols) and
the benches can render a processor-pair traffic matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.machine import Machine


@dataclass(frozen=True)
class MessageEvent:
    src: int
    dst: int
    nbytes: int


class MessageTrace:
    """Records every message on a machine while attached.

    Usage::

        with MessageTrace(machine) as trace:
            ... run runtime operations ...
        matrix = trace.traffic_matrix()
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.events: list[MessageEvent] = []
        self._orig_send = None
        self._orig_exchange = None

    # -- context management -------------------------------------------------
    def __enter__(self) -> "MessageTrace":
        if self._orig_send is not None:
            raise RuntimeError("trace already attached")
        self._orig_send = self.machine.send
        self._orig_exchange = self.machine.exchange

        def send(src, dst, nbytes):
            result = self._orig_send(src, dst, nbytes)
            if src != dst and nbytes > 0:
                self.events.append(MessageEvent(src, dst, nbytes))
            return result

        def exchange(bytes_matrix=None, *, src=None, dst=None, nbytes=None):
            array_args = (src, dst, nbytes)
            if bytes_matrix is not None and all(a is None for a in array_args):
                for (s, d), nb in bytes_matrix.items():
                    if s != d and nb > 0:
                        self.events.append(MessageEvent(s, d, nb))
                return self._orig_exchange(bytes_matrix)
            if bytes_matrix is None and all(a is not None for a in array_args):
                for s, d, nb in zip(src, dst, nbytes):
                    if s != d and nb > 0:
                        self.events.append(MessageEvent(int(s), int(d), int(nb)))
                return self._orig_exchange(src=src, dst=dst, nbytes=nbytes)
            # invalid combination: record nothing, let the machine raise
            return self._orig_exchange(bytes_matrix, src=src, dst=dst, nbytes=nbytes)

        self.machine.send = send
        self.machine.exchange = exchange
        return self

    def __exit__(self, *exc) -> None:
        self.machine.send = self._orig_send
        self.machine.exchange = self._orig_exchange
        self._orig_send = None
        self._orig_exchange = None

    # -- queries ------------------------------------------------------------
    def message_count(self) -> int:
        return len(self.events)

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self.events)

    def traffic_matrix(self) -> np.ndarray:
        """(P, P) byte totals, [src, dst]."""
        n = self.machine.n_procs
        out = np.zeros((n, n), dtype=np.int64)
        for e in self.events:
            out[e.src, e.dst] += e.nbytes
        return out

    def pairs(self) -> set[tuple[int, int]]:
        """Distinct communicating (src, dst) pairs."""
        return {(e.src, e.dst) for e in self.events}

    def render(self, unit: int = 1024) -> str:
        """Text heat map of the traffic matrix (units of ``unit`` bytes)."""
        mat = self.traffic_matrix() // unit
        n = self.machine.n_procs
        width = max(len(str(mat.max())), 3)
        lines = ["traffic matrix (KiB)" if unit == 1024 else f"traffic /{unit}B"]
        header = "     " + " ".join(f"{q:>{width}}" for q in range(n))
        lines.append(header)
        for p in range(n):
            row = " ".join(f"{mat[p, q]:>{width}}" for q in range(n))
            lines.append(f"{p:>4} {row}")
        return "\n".join(lines)
