"""Per-processor and machine-wide counters.

Every runtime operation charges a processor's clock and counters.  The
benchmark harness reads phase records (named, nestable timing regions) to
produce the paper's table rows; the raw counters (messages, bytes, flops)
back the ablation benches and give tests something exact to assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ProcessorStats:
    """Counters for one virtual processor."""

    clock: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    flops: float = 0.0
    iops: float = 0.0
    mem_ops: float = 0.0

    def snapshot(self) -> "ProcessorStats":
        return ProcessorStats(
            clock=self.clock,
            messages_sent=self.messages_sent,
            messages_received=self.messages_received,
            bytes_sent=self.bytes_sent,
            bytes_received=self.bytes_received,
            flops=self.flops,
            iops=self.iops,
            mem_ops=self.mem_ops,
        )

    def delta(self, earlier: "ProcessorStats") -> "ProcessorStats":
        """Counter difference ``self - earlier`` (for phase accounting)."""
        return ProcessorStats(
            clock=self.clock - earlier.clock,
            messages_sent=self.messages_sent - earlier.messages_sent,
            messages_received=self.messages_received - earlier.messages_received,
            bytes_sent=self.bytes_sent - earlier.bytes_sent,
            bytes_received=self.bytes_received - earlier.bytes_received,
            flops=self.flops - earlier.flops,
            iops=self.iops - earlier.iops,
            mem_ops=self.mem_ops - earlier.mem_ops,
        )


@dataclass
class PhaseRecord:
    """One named timing region, as the harness reports it.

    ``elapsed`` is wall time on the simulated machine: the maximum clock
    advance over all processors between phase start and end (the loosely
    synchronous convention -- everyone waits for the slowest).
    """

    name: str
    elapsed: float
    per_proc: list[ProcessorStats]

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.per_proc)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.per_proc)

    @property
    def total_flops(self) -> float:
        return sum(s.flops for s in self.per_proc)

    @property
    def max_clock(self) -> float:
        return max((s.clock for s in self.per_proc), default=0.0)


@dataclass
class MachineStats:
    """Machine-wide aggregation over all processors and phases."""

    phases: list[PhaseRecord] = field(default_factory=list)

    def add(self, record: PhaseRecord) -> None:
        self.phases.append(record)

    def phase_time(self, name: str) -> float:
        """Total elapsed simulated time across all phases named ``name``."""
        return sum(p.elapsed for p in self.phases if p.name == name)

    def phase_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for p in self.phases:
            seen.setdefault(p.name, None)
        return list(seen)

    def total_time(self) -> float:
        return sum(p.elapsed for p in self.phases)

    def clear(self) -> None:
        self.phases.clear()
