"""Ablation: iteration-placement rule (DESIGN.md item 3).

The paper's default places each iteration on "the processor that is the
home of the largest number of the iteration's distributed array
references" (almost-owner-computes); the classic owner-computes rule
follows the first left-hand side only.  Section 4.3's motivation is the
read-heavy case: when an iteration's reads cluster on one processor but
its write target lives elsewhere, owner-computes forces every read to be
communicated.  This ablation uses such a loop -- three reads through one
indirection, one reduction through another -- and measures ghost counts,
bytes per sweep, and executor time under both rules.

On the symmetric edge sweep (loop L2) the two rules tie by construction
(two votes per endpoint), which the last check documents.
"""

import numpy as np
from conftest import run_once

from repro.bench import render_table
from repro.core import ArrayRef, ForallLoop, Reduce, run_executor, run_inspector
from repro.distribution import BlockDistribution, DistArray
from repro.machine import Machine
from repro.workloads import generate_mesh, scale_config
from repro.workloads.euler import euler_edge_loop, setup_euler_program


def read_heavy_loop(n_iter):
    """y(ia(i)) += x(ib(i)) + x(ic(i)) * x(id(i)) -- reads outvote the write."""
    return ForallLoop(
        "read_heavy",
        n_iter,
        [
            Reduce(
                "add",
                ArrayRef("y", "ia"),
                lambda b, c, d: b + c * d,
                (ArrayRef("x", "ib"), ArrayRef("x", "ic"), ArrayRef("x", "id")),
                flops=3,
            )
        ],
    )


def run_read_heavy(rule, n=2000, n_iter=4000, procs=8, seed=0):
    rng = np.random.default_rng(seed)
    m = Machine(procs)
    dist = BlockDistribution(n, procs)
    idist = BlockDistribution(n_iter, procs)
    reads = rng.integers(0, n, n_iter)  # the three reads cluster per iteration
    arrays = {
        "x": DistArray.from_global(m, dist, rng.normal(size=n), name="x"),
        "y": DistArray.from_global(m, dist, np.zeros(n), name="y"),
        "ia": DistArray.from_global(m, idist, rng.integers(0, n, n_iter), name="ia"),
        "ib": DistArray.from_global(m, idist, reads, name="ib"),
        "ic": DistArray.from_global(
            m, idist, (reads + rng.integers(0, 3, n_iter)) % n, name="ic"
        ),
        "id": DistArray.from_global(
            m, idist, (reads + rng.integers(0, 3, n_iter)) % n, name="id"
        ),
    }
    loop = read_heavy_loop(n_iter)
    # pinned per-pattern schedules: this ablation's thresholds were tuned
    # before coalescing became the runtime default
    product = run_inspector(
        m, loop, arrays, iter_method=rule, coalesce_patterns=False
    )
    before_bytes = int(m.counters.bytes_sent.sum())
    before_t = m.elapsed()
    run_executor(m, product, arrays, n_times=10)
    return {
        "rule": rule,
        "exec_seconds": m.elapsed() - before_t,
        "bytes_per_sweep": (int(m.counters.bytes_sent.sum()) - before_bytes) / 10,
        "ghost_elements": sum(
            pat.ghosts.total_elements() for pat in product.patterns.values()
        ),
    }


def test_read_heavy_loop_prefers_majority_rule(benchmark, report):
    def run():
        return [
            run_read_heavy("almost_owner"),
            run_read_heavy("owner_computes"),
        ]

    rows = run_once(benchmark, run)
    report(
        "ablation_iterpart",
        render_table(
            "Iteration-placement ablation (read-heavy loop, 10 sweeps)",
            rows,
            [
                ("rule", "Rule"),
                ("exec_seconds", "Executor(10)"),
                ("bytes_per_sweep", "Bytes/sweep"),
                ("ghost_elements", "Ghosts"),
            ],
        ),
    )
    almost, owner = rows
    # majority placement localizes the clustered reads
    assert almost["ghost_elements"] < 0.7 * owner["ghost_elements"]
    assert almost["bytes_per_sweep"] < 0.8 * owner["bytes_per_sweep"]
    assert almost["exec_seconds"] <= owner["exec_seconds"]


def test_symmetric_edge_sweep_ties(benchmark):
    """On loop L2 the two rules place iterations nearly identically (two
    references vote for each endpoint), so neither should win big."""
    scale = scale_config()
    mesh = generate_mesh(scale.mesh_small, seed=1)

    def run():
        out = {}
        for rule in ("almost_owner", "owner_computes"):
            m = Machine(8)
            prog = setup_euler_program(m, mesh, seed=0, iter_method=rule)
            loop = euler_edge_loop(mesh)
            product = run_inspector(
                m,
                loop,
                prog.arrays,
                iter_method=rule,
                ttables=prog.ttables,
                coalesce_patterns=False,
            )
            out[rule] = sum(
                pat.ghosts.total_elements() for pat in product.patterns.values()
            )
        return out

    ghosts = run_once(benchmark, run)
    a, o = ghosts["almost_owner"], ghosts["owner_computes"]
    assert abs(a - o) < 0.1 * max(a, o)
