"""Tests for loop-derived LOAD weights (Section 4.1.1)."""

import numpy as np
import pytest

from repro.core import ArrayRef, Assign, ForallLoop, Reduce
from repro.core.weights import derive_loop_weights
from repro.distribution import BlockDistribution, DistArray
from repro.machine import Machine
from repro.partitioners import load_imbalance
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_edge_loop, setup_euler_program


@pytest.fixture
def m4():
    return Machine(4)


def make_ind(m, values, name):
    values = np.asarray(values, dtype=np.int64)
    return DistArray.from_global(
        m, BlockDistribution(values.size, m.n_procs), values, name=name
    )


class TestDeriveWeights:
    def test_l1_gives_unit_weights(self, m4):
        """Loop L1 writes each target once -> unit weights at targets."""
        ia = np.array([3, 1, 4, 0, 2])
        arrays = {"ia": make_ind(m4, ia, "ia")}
        loop = ForallLoop(
            "L1",
            5,
            [Assign(ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ib"),), flops=1)],
        )
        w = derive_loop_weights(loop, arrays, 6)
        assert w.tolist() == [1.0, 1.0, 1.0, 1.0, 1.0, 0.0]

    def test_l2_gives_degree_weights(self, m4):
        """Loop L2's weight is proportional to vertex degree."""
        e1 = np.array([0, 0, 1])
        e2 = np.array([1, 2, 2])
        arrays = {"e1": make_ind(m4, e1, "e1"), "e2": make_ind(m4, e2, "e2")}
        x1, x2 = ArrayRef("x", "e1"), ArrayRef("x", "e2")
        loop = ForallLoop(
            "L2",
            3,
            [
                Reduce("add", ArrayRef("y", "e1"), lambda a, b: a, (x1, x2), flops=1),
                Reduce("add", ArrayRef("y", "e2"), lambda a, b: b, (x1, x2), flops=1),
            ],
        )
        w = derive_loop_weights(loop, arrays, 3)
        degree = np.array([2.0, 2.0, 2.0])  # triangle: each vertex degree 2
        assert np.array_equal(w, degree)

    def test_flops_scale_weights(self, m4):
        ia = np.array([0, 0, 1])
        arrays = {"ia": make_ind(m4, ia, "ia")}
        loop = ForallLoop(
            "L",
            3,
            [Reduce("add", ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ia"),), flops=5)],
        )
        w = derive_loop_weights(loop, arrays, 2)
        assert w.tolist() == [10.0, 5.0]

    def test_direct_lhs(self, m4):
        loop = ForallLoop(
            "L", 4, [Assign(ArrayRef("y"), lambda a: a, (ArrayRef("x"),), flops=2)]
        )
        w = derive_loop_weights(loop, {}, 4)
        assert w.tolist() == [2.0, 2.0, 2.0, 2.0]

    def test_target_array_filter(self, m4):
        ia = np.array([0, 1])
        ib = np.array([1, 1])
        arrays = {"ia": make_ind(m4, ia, "ia"), "ib": make_ind(m4, ib, "ib")}
        loop = ForallLoop(
            "L",
            2,
            [
                Reduce("add", ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ia"),), flops=1),
                Reduce("add", ArrayRef("z", "ib"), lambda a: a, (ArrayRef("x", "ib"),), flops=1),
            ],
        )
        w = derive_loop_weights(loop, arrays, 2, target_array="y")
        assert w.tolist() == [1.0, 1.0]

    def test_unbound_indirection(self, m4):
        loop = ForallLoop(
            "L", 2, [Assign(ArrayRef("y", "missing"), lambda a: a, (ArrayRef("x"),))]
        )
        with pytest.raises(KeyError, match="missing"):
            derive_loop_weights(loop, {}, 2)

    def test_out_of_range_target(self, m4):
        ia = np.array([5])
        arrays = {"ia": make_ind(m4, ia, "ia")}
        loop = ForallLoop(
            "L", 1, [Assign(ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x"),))]
        )
        with pytest.raises(IndexError, match="outside"):
            derive_loop_weights(loop, arrays, 3)

    def test_size_mismatch(self, m4):
        ia = np.array([0, 1, 2])
        arrays = {"ia": make_ind(m4, ia, "ia")}
        loop = ForallLoop(
            "L", 5, [Assign(ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x"),))]
        )
        with pytest.raises(ValueError, match="iterates 5"):
            derive_loop_weights(loop, arrays, 3)


class TestEndToEndWeightedPartitioning:
    def test_weighted_rcb_balances_loop_work(self):
        """Partitioning with loop-derived weights balances *work* (edge
        endpoints), not just node counts -- the paper's motivation for
        combining GEOMETRY with LOAD on graded meshes."""
        mesh = generate_mesh(600, seed=17)
        m = Machine(8)
        prog = setup_euler_program(m, mesh, seed=17)
        loop = euler_edge_loop(mesh)
        w = derive_loop_weights(loop, prog.arrays, mesh.n_nodes, target_array="y")
        prog.array("w", "reg", values=w)
        prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"], load="w")
        prog.set_distribution("fmt", "G", "RCB")
        owners = prog.distfmts["fmt"].owner_map()
        assert load_imbalance(owners, 8, weights=w) < 1.25
