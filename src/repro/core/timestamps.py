"""The global modification timestamp: ``nmod``, ``last_mod``, dirty regions.

"We maintain a global variable nmod which represents the cumulative
number of Fortran 90D loops, array intrinsics or statements that have
modified any distributed array.  [...]  nmod may be viewed as a global
time stamp.  Each time we modify an array a with a given data access
descriptor DAD(a), we update a global data structure last_mod to
associate DAD(a) with the current value of the global variable nmod."
(Section 3.)

Crucially this counts *executions of writing code blocks*, not element
assignments -- one increment per loop / intrinsic / statement execution,
which is what keeps the tracking overhead negligible in compute-heavy
data-parallel codes.

Region-level dirty tracking (the ``repro.adapt`` extension)
-----------------------------------------------------------
The paper's check is binary: any write to a DAD invalidates every saved
inspector that dereferences it.  The incremental-inspection subsystem
needs one more bit of precision: *which global index ranges* a writing
block may have touched.  Each stamped write therefore optionally records
a ``(k, 2)`` array of half-open ``[lo, hi)`` ranges alongside the
timestamp; :meth:`ModificationRegistry.dirty_ranges` returns the merged
union of every range recorded for a DAD after a given stamp, or ``None``
when some write in that window carried no region information (the
conservative answer: anything may have changed).  Writes recorded the
paper's way -- no regions -- therefore degrade gracefully to the
Section 3 behaviour.  The per-DAD event log is bounded: old events are
coalesced (union of ranges at the *newest* stamp of the folded window)
once the log exceeds a small cap, which can only widen -- never shrink
-- what a later ``dirty_ranges`` query reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.dad import DAD

#: per-DAD event-log length that triggers coalescing of the older half
_MAX_EVENTS = 64


def normalize_ranges(ranges, size: int | None = None) -> np.ndarray:
    """Validate and normalize ranges to a ``(k, 2)`` int64 array."""
    arr = np.asarray(ranges)
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(
            f"ranges must be integer [lo, hi) pairs, got dtype {arr.dtype}"
        )
    arr = arr.astype(np.int64, copy=False)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"ranges must be (k, 2) [lo, hi) pairs, got shape {arr.shape}")
    if (arr[:, 0] > arr[:, 1]).any() or (arr[:, 0] < 0).any():
        raise ValueError("ranges must satisfy 0 <= lo <= hi")
    if size is not None and arr.size and arr[:, 1].max() > size:
        raise ValueError(f"range end {int(arr[:, 1].max())} exceeds array size {size}")
    return arr[arr[:, 0] < arr[:, 1]]


def ranges_from_positions(positions) -> np.ndarray:
    """Minimal ``(k, 2)`` range cover of a position set.

    Consecutive runs collapse into one range; scattered positions become
    unit ranges.  Used by write APIs that update scattered elements and
    need to record what they touched.
    """
    pos = np.asarray(positions)
    if pos.size and not np.issubdtype(pos.dtype, np.integer):
        raise ValueError(f"positions must be integers, got dtype {pos.dtype}")
    pos = np.unique(pos.astype(np.int64, copy=False))
    if not pos.size:
        return np.empty((0, 2), dtype=np.int64)
    if (pos < 0).any():
        raise ValueError("positions must be non-negative")
    breaks = np.flatnonzero(np.diff(pos) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.append(breaks, pos.size - 1)
    return np.stack([pos[starts], pos[ends] + 1], axis=1)


def merge_ranges(ranges: np.ndarray) -> np.ndarray:
    """Union of half-open ranges: sorted, overlap/adjacency-merged."""
    arr = normalize_ranges(ranges)
    if arr.shape[0] <= 1:
        return arr.copy()
    arr = arr[np.argsort(arr[:, 0], kind="stable")]
    # a range starts a new merged group iff it begins after the running
    # maximum end of everything before it
    ends = np.maximum.accumulate(arr[:, 1])
    new_group = np.empty(arr.shape[0], dtype=bool)
    new_group[0] = True
    new_group[1:] = arr[1:, 0] > ends[:-1]
    group = np.cumsum(new_group) - 1
    n_groups = int(group[-1]) + 1
    lo = arr[new_group, 0]
    hi = np.zeros(n_groups, dtype=np.int64)
    np.maximum.at(hi, group, arr[:, 1])
    return np.stack([lo, hi], axis=1)


class ModificationRegistry:
    """Tracks ``nmod``, ``last_mod(DAD)``, and per-DAD dirty regions."""

    def __init__(self) -> None:
        self.nmod = 0
        self._last_mod: dict[tuple, int] = {}
        #: DAD signature -> [(stamp, (k, 2) ranges | None), ...]
        self._events: dict[tuple, list[tuple[int, np.ndarray | None]]] = {}

    def _record_event(self, sig: tuple, ranges: np.ndarray | None) -> None:
        events = self._events.setdefault(sig, [])
        events.append((self.nmod, ranges))
        if len(events) > _MAX_EVENTS:
            # coalesce the older half into one conservative event: union
            # of its ranges at the *newest* stamp of the folded window.
            # A query with `since` inside the window then still sees the
            # whole union (stamp > since holds), i.e. a superset of the
            # truth; stamping with the oldest would let such a query
            # skip the merged event and *miss* dirty ranges.
            half = len(events) // 2
            old, keep = events[:half], events[half:]
            if any(r is None for _, r in old):
                merged: np.ndarray | None = None
            else:
                merged = merge_ranges(np.concatenate([r for _, r in old]))
            self._events[sig] = [(old[-1][0], merged)] + keep

    def record_block_write(
        self,
        dads: Iterable[DAD],
        regions: Sequence[np.ndarray | None] | None = None,
    ) -> int:
        """One writing block (loop / intrinsic / statement) executed.

        Increments ``nmod`` once and stamps every DAD the block may have
        written.  ``regions``, when given, is aligned with ``dads``: per
        DAD either a ``(k, 2)`` array of touched ``[lo, hi)`` global
        index ranges or ``None`` (touched indices unknown).  Returns the
        new ``nmod``.
        """
        dads = list(dads)
        for dad in dads:
            if not isinstance(dad, DAD):
                raise ValueError(
                    f"record_block_write takes DAD instances, got {type(dad).__name__}"
                )
        if regions is not None and len(regions) != len(dads):
            raise ValueError(
                f"got {len(regions)} region entries for {len(dads)} DADs"
            )
        self.nmod += 1
        for i, dad in enumerate(dads):
            self._last_mod[dad.signature] = self.nmod
            ranges = regions[i] if regions is not None else None
            if ranges is not None:
                ranges = normalize_ranges(ranges, dad.size)
            self._record_event(dad.signature, ranges)
        return self.nmod

    def record_remap(self, new_dad: DAD) -> int:
        """An array was remapped: its DAD changed.

        "If the array a is remapped, it means that DAD(a) changes.  In
        this case, we increment nmod and then set
        last_mod(DAD(a)) = nmod."
        """
        self.nmod += 1
        self._last_mod[new_dad.signature] = self.nmod
        # a remap relocates every element: region information is void
        self._record_event(new_dad.signature, None)
        return self.nmod

    def last_mod(self, dad: DAD) -> int:
        """Timestamp of the last possible write to arrays with this DAD.

        A DAD never recorded returns 0 (older than every real stamp).
        """
        return self._last_mod.get(dad.signature, 0)

    def dirty_ranges(self, dad: DAD, since: int) -> np.ndarray | None:
        """Union of index ranges possibly written after stamp ``since``.

        Returns a merged ``(k, 2)`` array (possibly empty: nothing was
        written after ``since``), or ``None`` when some write in the
        window recorded no region information -- the caller must assume
        the whole array is dirty.
        """
        since = int(since)
        if since < 0:
            raise ValueError(f"since must be a stamp >= 0, got {since}")
        parts = []
        for stamp, ranges in self._events.get(dad.signature, ()):
            if stamp <= since:
                continue
            if ranges is None:
                return None
            parts.append(ranges)
        if not parts:
            return np.empty((0, 2), dtype=np.int64)
        return merge_ranges(np.concatenate(parts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModificationRegistry(nmod={self.nmod}, tracked={len(self._last_mod)})"
