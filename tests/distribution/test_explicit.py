"""ExplicitDistribution and stable repartitioning."""

import numpy as np
import pytest

from repro.distribution import (
    BlockDistribution,
    ExplicitDistribution,
    IrregularDistribution,
    repartition_stable,
)


class TestExplicitDistribution:
    def test_round_trip_matches_maps(self):
        owners = np.array([1, 0, 1, 2, 0, 2, 1])
        local = np.array([0, 1, 2, 0, 0, 1, 1])
        d = ExplicitDistribution(owners, local, 3)
        g = np.arange(7)
        o, l = d.translate(g)
        assert np.array_equal(o, owners) and np.array_equal(l, local)
        for p in range(3):
            li = np.arange(d.local_size(p))
            back = d.global_index(p, li)
            assert np.array_equal(d.owner(back), np.full(back.size, p))
            assert np.array_equal(d.local_index(back), li)

    def test_matches_irregular_when_layout_agrees(self):
        rng = np.random.default_rng(1)
        owners = rng.integers(0, 4, size=40)
        irr = IrregularDistribution(owners, 4)
        g = np.arange(40)
        exp = ExplicitDistribution(owners, irr.local_index(g), 4)
        assert np.array_equal(exp.global_perm(), irr.global_perm())
        assert np.array_equal(exp.flat_offsets(), irr.flat_offsets())

    def test_rejects_sparse_offsets(self):
        # offset 1 on proc 0 is skipped -> not dense
        with pytest.raises(ValueError, match="out of range"):
            ExplicitDistribution([0, 0], [0, 2], 2)

    def test_rejects_duplicate_offsets(self):
        with pytest.raises(ValueError, match="assigned twice"):
            ExplicitDistribution([0, 0, 1], [0, 0, 0], 2)

    def test_rejects_owner_out_of_range(self):
        with pytest.raises(ValueError, match="owner map entry"):
            ExplicitDistribution([0, 3], [0, 0], 2)

    def test_signature_changes_with_layout(self):
        a = ExplicitDistribution([0, 1], [0, 0], 2)
        b = ExplicitDistribution([1, 0], [0, 0], 2)
        c = ExplicitDistribution([0, 1], [0, 0], 2)
        assert a.signature() != b.signature()
        assert a.signature() == c.signature()


class TestRepartitionStable:
    def setup_method(self):
        rng = np.random.default_rng(7)
        self.owners = rng.integers(0, 4, size=60)
        self.dist = IrregularDistribution(self.owners, 4)
        self.g = np.arange(60)

    def test_untouched_elements_keep_owner_and_offset(self):
        rng = np.random.default_rng(8)
        move_g = rng.choice(60, size=14, replace=False)
        move_to = rng.integers(0, 4, size=14)
        new, plan = repartition_stable(self.dist, move_g, move_to)
        touched = np.zeros(60, dtype=bool)
        touched[plan.moved] = True
        touched[plan.repacked] = True
        keep = ~touched
        assert np.array_equal(new.owner(self.g)[keep], self.owners[keep])
        assert np.array_equal(
            new.local_index(self.g)[keep], self.dist.local_index(self.g)[keep]
        )

    def test_moved_and_repacked_are_disjoint_and_correct(self):
        rng = np.random.default_rng(9)
        move_g = rng.choice(60, size=20, replace=False)
        move_to = rng.integers(0, 4, size=20)
        new, plan = repartition_stable(self.dist, move_g, move_to)
        assert not np.intersect1d(plan.moved, plan.repacked).size
        assert (new.owner(plan.moved) != self.dist.owner(plan.moved)).all()
        assert (new.owner(plan.repacked) == self.dist.owner(plan.repacked)).all()
        assert (
            new.local_index(plan.repacked) != self.dist.local_index(plan.repacked)
        ).all()

    def test_noop_moves_are_dropped(self):
        move_g = np.array([3, 5])
        move_to = self.owners[move_g]  # already there
        new, plan = repartition_stable(self.dist, move_g, move_to)
        assert plan.moved.size == 0 and plan.repacked.size == 0
        assert np.array_equal(new.owner(self.g), self.owners)
        assert np.array_equal(
            new.local_index(self.g), self.dist.local_index(self.g)
        )

    def test_growth_fills_holes_then_appends(self):
        # drain proc 0 partially into proc 1: proc 1 has no holes, all
        # arrivals append past its old size in gidx order
        mine = np.flatnonzero(self.owners == 0)[:3]
        new, plan = repartition_stable(self.dist, mine, np.full(3, 1))
        old_size1 = self.dist.local_size(1)
        got = np.sort(new.local_index(mine))
        assert np.array_equal(got, old_size1 + np.arange(3))

    def test_shrink_compacts_tail_into_holes(self):
        # move proc 2's lowest-offset elements away: survivors from the
        # tail must slide down so offsets stay dense
        mine = self.dist.global_index(2, np.arange(3))  # offsets 0,1,2
        new, plan = repartition_stable(self.dist, mine, np.full(3, 3))
        assert plan.repacked.size == 3
        ns = new.local_size(2)
        li = np.sort(new.local_index(self.dist.local_indices(2)[3:]))
        assert np.array_equal(li, np.arange(ns)[np.isin(np.arange(ns), li)])
        # density was already verified by the constructor; spot-check
        assert ns == self.dist.local_size(2) - 3

    def test_works_from_regular_distribution(self):
        d = BlockDistribution(12, 4)
        new, plan = repartition_stable(d, [0, 1], [3, 3])
        assert new.local_size(0) == 1 and new.local_size(3) == 5
        assert plan.moved.size == 2

    def test_rejects_duplicate_moves(self):
        with pytest.raises(ValueError, match="duplicate"):
            repartition_stable(self.dist, [1, 1], [0, 1])

    def test_rejects_target_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            repartition_stable(self.dist, [1], [4])

    def test_chained_repartitions_stay_dense(self):
        dist = self.dist
        rng = np.random.default_rng(11)
        for _ in range(5):
            k = int(rng.integers(1, 10))
            mg = rng.choice(60, size=k, replace=False)
            mt = rng.integers(0, 4, size=k)
            dist, _ = repartition_stable(dist, mg, mt)
        # constructor validates density/bijectivity on every step; the
        # layout is still a permutation of all 60 elements
        assert int(dist.local_sizes().sum()) == 60
