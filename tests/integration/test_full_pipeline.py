"""Cross-module integration: the full Figure 2 pipeline on every
workload under every applicable partitioner, verified against
sequential NumPy, plus determinism guarantees."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.workloads import generate_mesh, water_box
from repro.workloads.euler import (
    euler_edge_loop,
    euler_sequential_reference,
    setup_euler_program,
)
from repro.workloads.md import (
    md_force_loop,
    md_sequential_reference,
    setup_md_program,
)
from repro.workloads.sparse import (
    random_sparse_csr,
    setup_spmv_program,
    spmv_loop,
    spmv_sequential_reference,
)


GEOMETRY_PARTITIONERS = ["RCB", "RIB", "SFC"]
LINK_PARTITIONERS = ["RSB", "RSB+KL"]


class TestEulerAllPartitioners:
    @pytest.fixture(scope="class")
    def mesh(self):
        return generate_mesh(400, seed=3)

    @pytest.mark.parametrize("name", GEOMETRY_PARTITIONERS)
    def test_geometry_partitioners(self, mesh, name):
        m = Machine(8)
        prog = setup_euler_program(m, mesh, seed=3)
        x = prog.arrays["x"].to_global()
        prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
        prog.set_distribution("fmt", "G", name)
        prog.redistribute("reg", "fmt")
        prog.forall(euler_edge_loop(mesh), n_times=3)
        want = euler_sequential_reference(x, mesh.edges, n_times=3)
        assert np.allclose(prog.arrays["y"].to_global(), want)

    @pytest.mark.parametrize("name", LINK_PARTITIONERS)
    def test_link_partitioners(self, mesh, name):
        m = Machine(8)
        prog = setup_euler_program(m, mesh, seed=3)
        x = prog.arrays["x"].to_global()
        prog.construct("G", mesh.n_nodes, link=("end_pt1", "end_pt2"))
        prog.set_distribution("fmt", "G", name)
        prog.redistribute("reg", "fmt")
        prog.forall(euler_edge_loop(mesh), n_times=3)
        want = euler_sequential_reference(x, mesh.edges, n_times=3)
        assert np.allclose(prog.arrays["y"].to_global(), want)

    def test_load_weighted_geocol(self, mesh):
        """LOAD information combined with GEOMETRY: heavier nodes get
        spread, and the sweep still computes correctly."""
        m = Machine(4)
        prog = setup_euler_program(m, mesh, seed=3)
        x = prog.arrays["x"].to_global()
        deg = mesh.degree().astype(np.float64)
        prog.array("w", "reg", values=deg)
        prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"], load="w")
        prog.set_distribution("fmt", "G", "RCB")
        prog.redistribute("reg", "fmt")
        prog.forall(euler_edge_loop(mesh), n_times=2)
        want = euler_sequential_reference(x, mesh.edges, n_times=2)
        assert np.allclose(prog.arrays["y"].to_global(), want)
        # weighted balance: per-processor degree sums are comparable
        from repro.partitioners import load_imbalance

        owners = prog.arrays["x"].distribution.owner_map()
        assert load_imbalance(owners, 4, weights=deg) < 1.3


class TestMDPipeline:
    def test_md_with_rcb_repartition(self):
        m = Machine(4)
        prog, pairs = setup_md_program(m, n_atoms=324, cutoff=6.0, seed=1)
        coords = np.stack([prog.arrays[c].to_global() for c in ("rx", "ry", "rz")])
        charges = prog.arrays["q"].to_global()
        prog.construct("G", 324, geometry=["rx", "ry", "rz"])
        prog.set_distribution("fmt", "G", "RCB")
        prog.redistribute("atoms", "fmt")
        prog.forall(md_force_loop(pairs.shape[1]), n_times=3)
        want = md_sequential_reference(coords, charges, pairs, n_times=3)
        assert np.allclose(prog.arrays["fx"].to_global(), want)

    def test_md_rsb_on_pair_graph(self):
        m = Machine(4)
        prog, pairs = setup_md_program(m, n_atoms=324, cutoff=5.0, seed=1)
        coords = np.stack([prog.arrays[c].to_global() for c in ("rx", "ry", "rz")])
        charges = prog.arrays["q"].to_global()
        prog.construct("G", 324, link=("p1", "p2"))
        prog.set_distribution("fmt", "G", "RSB")
        prog.redistribute("atoms", "fmt")
        prog.forall(md_force_loop(pairs.shape[1]), n_times=2)
        want = md_sequential_reference(coords, charges, pairs, n_times=2)
        assert np.allclose(prog.arrays["fx"].to_global(), want)


class TestSpMVPipeline:
    def test_spmv_after_load_partition(self):
        mat = random_sparse_csr(200, seed=2)
        m = Machine(4)
        prog = setup_spmv_program(m, mat, seed=2)
        x = prog.arrays["x"].to_global()
        # partition rows by their nonzero count (LOAD-only GeoCoL)
        row_nnz = np.diff(mat.indptr).astype(np.float64)
        prog.array("w", "vec", values=row_nnz)
        prog.construct("G", 200, load="w")
        prog.set_distribution("fmt", "G", "LOAD")
        prog.redistribute("vec", "fmt")
        prog.forall(spmv_loop(mat.nnz), n_times=3)
        want = spmv_sequential_reference(mat, x, n_times=3)
        assert np.allclose(prog.arrays["y"].to_global(), want)


class TestDeterminism:
    def test_identical_runs_identical_times(self):
        """The simulation is fully deterministic: same inputs give the
        same simulated clock to the last bit."""
        mesh = generate_mesh(300, seed=5)

        def run():
            m = Machine(8)
            prog = setup_euler_program(m, mesh, seed=5)
            prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
            prog.set_distribution("fmt", "G", "RCB")
            prog.redistribute("reg", "fmt")
            prog.forall(euler_edge_loop(mesh), n_times=5)
            return m.elapsed(), prog.arrays["y"].to_global()

        (t1, y1), (t2, y2) = run(), run()
        assert t1 == t2
        assert np.array_equal(y1, y2)

    def test_rsb_deterministic_across_runs(self):
        mesh = generate_mesh(300, seed=6)

        def owners():
            m = Machine(4)
            prog = setup_euler_program(m, mesh, seed=6)
            prog.construct("G", mesh.n_nodes, link=("end_pt1", "end_pt2"))
            prog.set_distribution("fmt", "G", "RSB")
            return prog.distfmts["fmt"].owner_map()

        assert np.array_equal(owners(), owners())

    def test_water_box_deterministic(self):
        a, qa = water_box(324, seed=4)
        b, qb = water_box(324, seed=4)
        assert np.array_equal(a, b) and np.array_equal(qa, qb)
