"""Structured event bus + list-shaped compatibility views.

One :class:`EventBus` per program (or per serve service) replaces the
three historically separate logs -- ``program.guard_events``,
``adapt.fallback_log``, and serve job/service lifecycle events -- with
a single ordered stream of ``(seq, category, name, payload)`` records.

The legacy attributes survive as :class:`EventLogView` objects: live,
list-shaped windows onto one category of the bus.  A view supports the
full idiom the existing tests and checkpoint code use on the old plain
lists -- ``append``, ``len``, indexing and slicing (returning payload
dicts), iteration, truthiness, equality against a list, ``clear``,
``extend``, and whole-slice assignment (``view[:] = items``, which the
checkpoint restore path uses to replace history wholesale).  Appending
through a view emits onto the bus; emitting onto the bus shows up in
every view of that category.  The event *name* is lifted from the
payload via ``name_key`` (``"event"`` for guard/serve records,
``"reason"`` for adapt fallbacks) so callers keep appending the exact
dicts they always did.

The bus is always on -- it is bookkeeping the legacy lists already
paid for -- and is independent of the :mod:`repro.obs.tracer` wall-time
spans; exporters interleave both into one artifact.
"""

from __future__ import annotations

import itertools


class EventRecord:
    __slots__ = ("seq", "category", "name", "payload")

    def __init__(self, seq, category, name, payload):
        self.seq = seq
        self.category = category
        self.name = name
        self.payload = payload

    def to_dict(self) -> dict:
        return {
            "kind": "event",
            "seq": self.seq,
            "category": self.category,
            "name": self.name,
            "payload": self.payload,
        }


class EventBus:
    """Ordered, categorized structured-event stream."""

    def __init__(self):
        self._seq = itertools.count()
        self._by_category: dict[str, list[EventRecord]] = {}
        self._order: list[EventRecord] = []

    def emit(self, category: str, name: str, payload: dict) -> EventRecord:
        rec = EventRecord(next(self._seq), category, name, payload)
        self._by_category.setdefault(category, []).append(rec)
        self._order.append(rec)
        return rec

    def category(self, category: str) -> list[EventRecord]:
        return self._by_category.get(category, [])

    def all(self) -> list[EventRecord]:
        return list(self._order)

    def counts(self) -> dict[str, int]:
        return {cat: len(recs) for cat, recs in self._by_category.items() if recs}

    def clear_category(self, category: str) -> None:
        recs = self._by_category.pop(category, [])
        if recs:
            drop = set(map(id, recs))
            self._order = [r for r in self._order if id(r) not in drop]

    def view(self, category: str, name_key: str = "event") -> "EventLogView":
        return EventLogView(self, category, name_key)


class EventLogView:
    """List-shaped live window onto one bus category.

    Yields the *payload dicts*, so code written against the old plain
    lists (``for e in prog.guard_events: e["recovered"]``) is unchanged.
    """

    __slots__ = ("_bus", "_category", "_name_key")

    def __init__(self, bus: EventBus, category: str, name_key: str):
        self._bus = bus
        self._category = category
        self._name_key = name_key

    @property
    def category(self) -> str:
        return self._category

    def _records(self):
        return self._bus.category(self._category)

    def append(self, payload: dict) -> None:
        name = str(payload.get(self._name_key, self._category))
        self._bus.emit(self._category, name, payload)

    def extend(self, payloads) -> None:
        for payload in payloads:
            self.append(payload)

    def clear(self) -> None:
        self._bus.clear_category(self._category)

    def __len__(self) -> int:
        return len(self._records())

    def __bool__(self) -> bool:
        return bool(self._records())

    def __iter__(self):
        return (rec.payload for rec in self._records())

    def __getitem__(self, idx):
        recs = self._records()
        if isinstance(idx, slice):
            return [rec.payload for rec in recs[idx]]
        return recs[idx].payload

    def __setitem__(self, idx, value):
        # Whole-slice replacement is the one mutation the checkpoint
        # restore path needs; arbitrary writes stay unsupported.
        if not (isinstance(idx, slice) and idx == slice(None)):
            raise TypeError(
                "EventLogView only supports whole-slice assignment (view[:] = ...)"
            )
        self.clear()
        self.extend(value)

    def __eq__(self, other):
        if isinstance(other, EventLogView):
            other = list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __repr__(self):
        return f"EventLogView({self._category!r}, {list(self)!r})"
