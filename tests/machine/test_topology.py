"""Tests for interconnect topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.topology import (
    FullyConnectedTopology,
    HypercubeTopology,
    MeshTopology,
    RingTopology,
    make_topology,
)


class TestHypercube:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            HypercubeTopology(6)

    def test_dim(self):
        assert HypercubeTopology(1).dim == 0
        assert HypercubeTopology(2).dim == 1
        assert HypercubeTopology(32).dim == 5

    def test_hops_is_hamming_distance(self):
        t = HypercubeTopology(16)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 1) == 1
        assert t.hops(0, 15) == 4
        assert t.hops(0b1010, 0b0101) == 4

    def test_symmetry(self):
        t = HypercubeTopology(8)
        for a in range(8):
            for b in range(8):
                assert t.hops(a, b) == t.hops(b, a)

    def test_diameter(self):
        assert HypercubeTopology(64).diameter() == 6

    def test_neighbors(self):
        t = HypercubeTopology(8)
        assert sorted(t.neighbors(0)) == [1, 2, 4]
        assert sorted(t.neighbors(5)) == [1, 4, 7]

    def test_neighbors_are_one_hop(self):
        t = HypercubeTopology(16)
        for p in range(16):
            for q in t.neighbors(p):
                assert t.hops(p, q) == 1

    def test_out_of_range(self):
        t = HypercubeTopology(4)
        with pytest.raises(ValueError, match="out of range"):
            t.hops(0, 4)
        with pytest.raises(ValueError, match="out of range"):
            t.hops(-1, 0)


class TestRing:
    def test_hops_takes_shorter_way(self):
        t = RingTopology(8)
        assert t.hops(0, 1) == 1
        assert t.hops(0, 7) == 1
        assert t.hops(0, 4) == 4
        assert t.hops(1, 6) == 3

    def test_diameter(self):
        assert RingTopology(8).diameter() == 4
        assert RingTopology(7).diameter() == 3


class TestFullyConnected:
    def test_all_one_hop(self):
        t = FullyConnectedTopology(5)
        assert t.hops(2, 2) == 0
        assert t.hops(0, 4) == 1
        assert t.diameter() == 1

    def test_single_proc_diameter(self):
        assert FullyConnectedTopology(1).diameter() == 0


class TestMesh:
    def test_factorization(self):
        t = MeshTopology(12)
        assert t.rows * t.cols == 12
        assert t.rows == 3 and t.cols == 4

    def test_manhattan(self):
        t = MeshTopology(16)  # 4x4
        assert t.hops(0, 5) == 2  # (0,0)->(1,1)
        assert t.hops(0, 15) == 6

    def test_prime_count_degrades_to_row(self):
        t = MeshTopology(7)
        assert t.rows == 1 and t.cols == 7
        assert t.diameter() == 6


class TestFactory:
    @pytest.mark.parametrize("name", ["hypercube", "ring", "full", "mesh"])
    def test_known(self, name):
        t = make_topology(name, 4)
        assert t.n_procs == 4

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("torus", 4)

    def test_zero_procs(self):
        with pytest.raises(ValueError, match="at least one"):
            make_topology("ring", 0)


@given(
    dim=st.integers(min_value=0, max_value=6),
    data=st.data(),
)
def test_hypercube_triangle_inequality(dim, data):
    n = 2**dim
    t = HypercubeTopology(n)
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    c = data.draw(st.integers(0, n - 1))
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
    assert (t.hops(a, b) == 0) == (a == b)
