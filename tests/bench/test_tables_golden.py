"""Golden-table regression tests: Tables 1-4 pinned to checked-in JSON.

The paper's deliverables are the numbers in Tables 1-4, so counter-store
and vectorization refactors must not shift them *at all*: the fixtures
store exact float64 values (JSON round-trips shortest-repr floats
losslessly) and the assertions are exact equality, not approx.

The ``tiny``-scale pin runs on every tier-1 invocation (~3s).  The
``small``-scale pin regenerates the full paper-scale-shaped sweep
(~70s), so it only runs when ``REPRO_GOLDEN=small`` is set -- the CI
fast-bench smoke job does exactly that.

Regenerate a fixture after an *intentional* numbers change with::

    PYTHONPATH=src python -m repro.bench tables --scale tiny --json \
        tests/bench/fixtures/tables_golden_tiny.json

(the ``tables`` target emits exactly the four pinned tables; ``all``
would add a ``fig2`` key these tests reject).
"""

import json
import os

import pytest

from repro.bench.tables import TABLE_BUILDERS, all_tables_rows

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def load_fixture(scale: str) -> dict:
    path = os.path.join(FIXTURE_DIR, f"tables_golden_{scale}.json")
    with open(path) as fh:
        return json.load(fh)


def assert_tables_equal(actual: dict, expected: dict, scale: str) -> None:
    assert set(actual) == set(expected)
    for table in TABLE_BUILDERS:
        exp_rows = expected[table]
        act_rows = json.loads(json.dumps(actual[table]))  # normalize types
        assert len(act_rows) == len(exp_rows), f"{table}@{scale}: row count changed"
        for i, (act, exp) in enumerate(zip(act_rows, exp_rows)):
            assert act == exp, (
                f"{table}@{scale} row {i} ({exp.get('config', exp.get('column'))!r}) "
                f"drifted:\n  expected {exp}\n  got      {act}"
            )


def test_tables_golden_tiny():
    assert_tables_equal(all_tables_rows("tiny"), load_fixture("tiny"), "tiny")


@pytest.mark.skipif(
    os.environ.get("REPRO_GOLDEN") != "small",
    reason="full small-scale golden sweep (~70s); set REPRO_GOLDEN=small to run",
)
def test_tables_golden_small():
    assert_tables_equal(all_tables_rows("small"), load_fixture("small"), "small")


def test_fixture_files_are_complete():
    """Both fixtures pin every table with the expected row counts."""
    for scale in ("tiny", "small"):
        fix = load_fixture(scale)
        assert set(fix) == set(TABLE_BUILDERS)
        assert [len(fix[t]) for t in ("table1", "table2", "table3", "table4")] == [
            9, 6, 9, 9,
        ]
