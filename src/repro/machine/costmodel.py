"""Communication and computation cost model.

Message cost follows the classic alpha-beta (Hockney) model with a small
per-hop term for store-and-forward networks:

    t(msg) = alpha + beta * nbytes + hop_cost * (hops - 1)

Compute cost is charged per abstract operation: floating-point ops, integer
index ops, and (local) memory traffic all convert to seconds through
per-operation rates.  The ``IPSC860`` preset is calibrated to published
Intel iPSC/860 microbenchmarks: ~100 microsecond message startup,
~2.8 MB/s sustained point-to-point bandwidth, and an *effective* (not
peak) compute rate of ~2 MFLOP/s on irregular Fortran loop bodies.

Only ratios matter for the reproduction -- the ablation bench
(`bench_ablation_costmodel`) shows the paper-table *shapes* survive 10x
perturbations of each constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class CostModel:
    """Converts operation counts to simulated seconds."""

    alpha: float = 100e-6
    """Message startup latency, seconds."""

    beta: float = 1.0 / 2.8e6
    """Per-byte transfer time, seconds (inverse bandwidth)."""

    hop_cost: float = 10e-6
    """Extra latency per network hop beyond the first, seconds."""

    flop_time: float = 1.0 / 2.0e6
    """Seconds per floating-point operation (effective, not peak)."""

    iop_time: float = 1.0 / 1.5e6
    """Seconds per integer/index operation (table lookups, hashing).

    Irregular integer/pointer code (hash probes, indirect loads) ran at
    an effective ~1-1.5 M ops/s on the i860 -- far below peak -- which
    is what makes the paper's inspector/remap phases cost seconds.
    """

    mem_time: float = 1.0 / 20.0e6
    """Seconds per 8-byte local memory access (copies, buffer packing)."""

    name: str = "custom"

    def __post_init__(self) -> None:
        for field in ("alpha", "beta", "hop_cost", "flop_time", "iop_time", "mem_time"):
            if getattr(self, field) < 0:
                raise ValueError(f"cost model field {field} must be non-negative")

    # -- communication -----------------------------------------------------
    def message_time(self, nbytes: int, hops: int = 1) -> float:
        """Time for one point-to-point message of ``nbytes`` over ``hops``."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if hops < 0:
            raise ValueError(f"negative hop count {hops}")
        extra = max(hops - 1, 0)
        return self.alpha + self.beta * nbytes + self.hop_cost * extra

    def message_time_array(self, nbytes: np.ndarray, hops: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`message_time` over parallel size/hop arrays.

        The arithmetic matches the scalar path term for term (same
        operation order), so simulated times are bit-identical whether a
        message is costed one at a time or in bulk.
        """
        nbytes = np.asarray(nbytes)
        hops = np.asarray(hops)
        if nbytes.size and nbytes.min() < 0:
            raise ValueError(f"negative message size {int(nbytes.min())}")
        if hops.size and hops.min() < 0:
            raise ValueError(f"negative hop count {int(hops.min())}")
        extra = np.maximum(hops - 1, 0)
        return self.alpha + self.beta * nbytes + self.hop_cost * extra

    # -- computation -------------------------------------------------------
    def compute_time(self, flops: float = 0.0, iops: float = 0.0, mem: float = 0.0) -> float:
        """Time for a block of local work.

        ``mem`` counts 8-byte word accesses beyond those implied by flops
        (e.g. buffer packing/unpacking, copies).
        """
        if min(flops, iops, mem) < 0:
            raise ValueError("operation counts must be non-negative")
        return flops * self.flop_time + iops * self.iop_time + mem * self.mem_time

    def compute_time_array(
        self,
        flops: np.ndarray | float = 0.0,
        iops: np.ndarray | float = 0.0,
        mem: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`compute_time`; same term order, so charging
        work in bulk or per processor yields bit-identical times."""
        flops = np.asarray(flops, dtype=np.float64)
        iops = np.asarray(iops, dtype=np.float64)
        mem = np.asarray(mem, dtype=np.float64)
        for counts in (flops, iops, mem):
            if counts.size and counts.min() < 0:
                raise ValueError("operation counts must be non-negative")
        return flops * self.flop_time + iops * self.iop_time + mem * self.mem_time

    def scaled(self, **factors: float) -> "CostModel":
        """Return a copy with named fields multiplied by given factors.

        Used by the calibration ablation: ``model.scaled(alpha=10, beta=0.1)``.
        """
        updates = {}
        for key, factor in factors.items():
            if key == "name":
                raise ValueError("cannot scale the model name")
            updates[key] = getattr(self, key) * factor
        return replace(self, name=f"{self.name}-scaled", **updates)


IPSC860 = CostModel(name="ipsc860")
"""Calibrated to the Intel iPSC/860 hypercube used in the paper."""

IDEALIZED = CostModel(
    alpha=1e-6,
    beta=1.0 / 100e6,
    hop_cost=0.0,
    flop_time=1.0 / 100e6,
    iop_time=1.0 / 400e6,
    mem_time=1.0 / 1e9,
    name="idealized",
)
"""A fast flat machine, for ablations."""

_PRESETS = {"ipsc860": IPSC860, "idealized": IDEALIZED}


def make_cost_model(name: str = "ipsc860") -> CostModel:
    """Look up a preset cost model by name."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown cost model {name!r}; choose from {sorted(_PRESETS)}"
        ) from None
