"""Routing: full-inspect / reuse / incremental-patch per time step.

:class:`IncrementalInspector` is the program-facing side of the
subsystem.  ``IrregularProgram`` (with ``incremental=True``) consults it
when the Section 3 reuse check fails:

* a **condition 1/2** failure (a DAD changed -- some array was
  remapped or resized) is unpatchable: saved owners, local offsets and
  schedules are void; the full inspector runs and fresh adapt state is
  captured;
* a **condition 3** failure (indirection *values* may have changed)
  is diffed: if every stale indirection has region information and the
  changed-value fraction is under ``max_change_fraction``, the saved
  product is patched (:func:`~repro.adapt.patch.patch_product`);
  otherwise the full inspector runs.

:class:`AdaptiveExecutor` is a thin driver for adaptive workloads: it
steps a loop, classifies each step (``full`` / ``reuse`` / ``patch``)
and records the simulated inspector cost per step -- what
``benchmarks/bench_table_adapt.py`` reports.

Degradation is *graceful and bounded* (the escalation ladder):

1. a patch attempt that raises a typed failure
   (:class:`~repro.guard.errors.PatchAborted`, or
   :class:`~repro.guard.errors.PatchVerifyFailed` when the patched
   product fails post-patch invariant verification) discards the loop's
   saved adapt state and falls back to the conservative full inspector
   -- correctness never depends on a product that failed verification;
2. every fallback, including routine routing ones (unpatchable
   condition, missing state or region info, churn over threshold),
   appends a structured record to ``fallback_log`` and is surfaced
   per-step through :class:`AdaptiveExecutor.history`;
3. after ``max_failures`` patch failures on one loop, incremental
   inspection is disabled for that loop (``disabled``) -- a persistent
   bookkeeping bug cannot cause a patch/fail/re-inspect livelock.

Only the typed hierarchy is caught; unexpected exceptions (``KeyError``,
``IndexError``, ...) are bugs and propagate.
"""

from __future__ import annotations

import numpy as np

from repro.adapt.diff import changed_at, expand_ranges
from repro.adapt.patch import (
    DIFF_IOPS_PER_ELEMENT,
    PatchResult,
    patch_product,
)
from repro.adapt.state import build_adapt_state, charge_state_build
from repro.chaos.ttable import build_translation_table
from repro.core.dad import DAD
from repro.core.forall import ForallLoop
from repro.core.records import InspectorRecord
from repro.core.reuse import ReuseDecision
from repro.guard.errors import InvariantViolation, PatchError, PatchVerifyFailed
from repro.guard.invariants import verify_product

#: fixed integer ops for deciding whether a reuse failure is patchable
PATCH_CHECK_IOPS = 10.0


class IncrementalInspector:
    """Per-program incremental-inspection state and patch routing."""

    def __init__(
        self,
        program,
        max_change_fraction: float = 0.35,
        max_failures: int = 3,
    ):
        if not 0.0 < max_change_fraction <= 1.0:
            raise ValueError(
                f"max_change_fraction must be in (0, 1], got {max_change_fraction}"
            )
        if max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {max_failures}")
        self.program = program
        self.max_change_fraction = max_change_fraction
        self.max_failures = max_failures
        self.states: dict[str, object] = {}
        #: stats of the most recent successful patch (bench introspection)
        self.last_patch: PatchResult | None = None
        #: the exception that aborted the most recent patch attempt, if
        #: any -- the driver recovered by falling back to full inspection
        self.last_error: Exception | None = None
        #: structured record of every fallback to the full inspector:
        #: {"loop", "stage", "reason", "error", **detail}.  When the
        #: program carries an event bus this is a live list-shaped view
        #: over its "adapt.fallback" category (shared structured-event
        #: schema); standalone construction keeps a plain list.
        if program is not None and getattr(program, "events", None) is not None:
            self.fallback_log = program.events.view(
                "adapt.fallback", name_key="reason"
            )
        else:
            self.fallback_log = []
        #: per-loop count of typed patch failures (aborts + verify)
        self.failures: dict[str, int] = {}
        #: loops whose incremental inspection was disabled after
        #: ``max_failures`` failures (the ladder's last rung)
        self.disabled: set[str] = set()

    # ------------------------------------------------------------------
    def _fallback(self, loop_name: str, stage: str, reason: str, error=None, **detail):
        """Record one fall-back-to-full-inspection decision; returns None
        (the sentinel ``attempt`` hands the caller)."""
        self.fallback_log.append(
            {
                "loop": loop_name,
                "stage": stage,
                "reason": reason,
                "error": None if error is None else f"{type(error).__name__}: {error}",
                **detail,
            }
        )
        return None

    # ------------------------------------------------------------------
    def after_inspect(self, loop: ForallLoop, record: InspectorRecord) -> None:
        """Capture fresh adapt state after a full inspection (charged)."""
        arrays = self.program.arrays
        machine = self.program.machine
        with machine.obs.span("adapt.state.build_adapt_state", loop=loop.name):
            self.states[loop.name] = build_adapt_state(record.product, arrays)
            charge_state_build(machine, record.product, arrays)

    # ------------------------------------------------------------------
    def attempt(
        self, loop: ForallLoop, record: InspectorRecord, decision: ReuseDecision
    ):
        """Try to patch after a failed reuse check; ``None`` means the
        caller must run the full inspector.  Every ``None`` leaves a
        structured record in ``fallback_log`` saying why."""
        if loop.name in self.disabled:
            # last rung of the ladder: this loop failed too often
            return self._fallback(loop.name, "route", "incremental_disabled")
        if decision.condition != 3:
            # conditions are checked in order, so condition 3 implies
            # every DAD is intact -- the only patchable failure mode
            return self._fallback(
                loop.name, "route", "unpatchable_condition",
                condition=decision.condition,
            )
        state = self.states.get(loop.name)
        if state is None:
            return self._fallback(loop.name, "route", "no_saved_state")
        machine = self.program.machine
        registry = self.program.registry
        arrays = self.program.arrays
        stale = [
            name
            for name, stamp in record.ind_last_mod.items()
            if registry.last_mod(DAD.of(arrays[name])) != stamp
        ]
        dirty: dict[str, np.ndarray] = {}
        for name in stale:
            ranges = registry.dirty_ranges(
                DAD.of(arrays[name]), since=record.ind_last_mod[name]
            )
            if ranges is None:
                # some write carried no region info: anything may have
                # changed -- fall back to the conservative full inspector
                return self._fallback(
                    loop.name, "route", "no_region_info", array=name
                )
            dirty[name] = ranges

        obs = machine.obs
        with machine.phase("inspector"):
            machine.charge_compute_all(iops=PATCH_CHECK_IOPS)
            # diff: each owner compares its share of the dirty windows
            changed: dict[str, np.ndarray] = {}
            n_changed = 0
            n_tracked = 0
            with obs.span("adapt.diff", loop=loop.name) as diff_span:
                for name in stale:
                    arr = arrays[name]
                    n_tracked += arr.size
                    pos = expand_ranges(dirty[name])
                    if pos.size:
                        # every owner compares its share of the dirty window
                        owners = np.asarray(
                            arr.distribution.owner(pos), dtype=np.int64
                        )
                        machine.charge_compute_all(
                            iops=DIFF_IOPS_PER_ELEMENT
                            * np.bincount(owners, minlength=machine.n_procs).astype(
                                np.float64
                            )
                        )
                    cur = np.asarray(arr.global_view(), dtype=np.int64)
                    chg = changed_at(state.snapshots[name], cur, pos)
                    changed[name] = chg
                    n_changed += int(chg.size)
                diff_span.set(n_changed=n_changed, n_tracked=n_tracked)
            if n_tracked and n_changed > self.max_change_fraction * n_tracked:
                # too much churn: a full inspection is the better deal
                # (the diff work above was the price of finding out).
                # the comparison is strict: exactly-at-threshold patches.
                return self._fallback(
                    loop.name, "route", "over_threshold",
                    n_changed=n_changed, n_tracked=n_tracked,
                )
            self.last_error = None
            try:
                with obs.span(
                    "adapt.patch", loop=loop.name, n_changed=n_changed
                ):
                    result = patch_product(
                        machine,
                        record.product,
                        arrays,
                        state,
                        changed,
                        self._ttables_for(record),
                        costs=self.program.costs,
                        cache=self.program.translation_cache,
                    )
                with obs.span("adapt.verify", loop=loop.name):
                    self._verify_patch(loop, result)
            except (PatchError, InvariantViolation) as exc:
                # patch_product keeps state consistent on failure (its
                # slot spaces persist only after every group succeeds),
                # so the conservative full inspector is a safe recovery:
                # drop this loop's state (rebuilt after the full run),
                # count the failure toward the disable threshold, and
                # report it through last_error + fallback_log.  only the
                # typed hierarchy is recoverable; anything else is a bug
                # and propagates.
                self.states.pop(loop.name, None)
                self.last_error = exc
                count = self.failures.get(loop.name, 0) + 1
                self.failures[loop.name] = count
                if count >= self.max_failures:
                    self.disabled.add(loop.name)
                stage = "verify" if isinstance(exc, PatchVerifyFailed) else "patch"
                return self._fallback(
                    loop.name,
                    stage,
                    "verify_failed" if stage == "verify" else "patch_aborted",
                    error=exc,
                    failure_count=count,
                    disabled=loop.name in self.disabled,
                )
        self.last_patch = result
        record.product = result.product
        record.ind_last_mod = {
            name: registry.last_mod(DAD.of(arrays[name]))
            for name in record.ind_last_mod
        }
        return result.product

    # ------------------------------------------------------------------
    def _verify_patch(self, loop: ForallLoop, result: PatchResult) -> None:
        """Post-patch verification rung of the ladder (host-level, uncharged).

        Runs the invariant checkers over the patched product at the
        program's guard level, raised to at least ``cheap`` while a
        fault plan is installed (skipped entirely only when the guard is
        off and no faults are active).  An installed
        :class:`~repro.guard.faults.FaultPlan` gets its post-patch hook
        first, so injected slot flips face the same verification real
        corruption would.
        """
        machine = self.program.machine
        faults = machine.faults
        if faults is not None:
            faults.on_patched_product(result.product)
        level = getattr(self.program, "guard", "off")
        if level == "off":
            if faults is None:
                return
            level = "cheap"
        try:
            verify_product(
                result.product,
                self.program.arrays,
                level,
                state=self.states.get(loop.name),
            )
        except InvariantViolation as exc:
            raise PatchVerifyFailed(
                f"patched product for loop {loop.name!r} failed {level} "
                f"verification: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def _ttables_for(self, record: InspectorRecord) -> dict:
        """The program's translation-table cache, topped up defensively.

        Tables were built (and cached) by the full inspection and the
        distribution signatures are unchanged, so this is normally a
        pure lookup.
        """
        prog = self.program
        for name in record.data_dads:
            arr = prog.arrays[name]
            tkey = (name, arr.distribution.signature())
            if tkey not in prog.ttables:
                prog.ttables[tkey] = build_translation_table(
                    prog.machine, arr.distribution, prog.costs, prog.ttable_variant
                )
        return prog.ttables


class AdaptiveExecutor:
    """Step-wise driver for one loop of an adaptive computation.

    Each :meth:`step` runs one sweep through the program's FORALL path
    and classifies how its inspection was satisfied: a full inspector
    run, a straight reuse hit, or an incremental patch.  ``history``
    keeps per-step ``(mode, simulated inspector seconds, fallbacks)`` so
    adaptive benches can attribute inspector cost to adaptation events
    and a run can never *silently* continue past a failed verification:
    every fall-back decision the incremental inspector took during a
    step rides along in that step's ``fallbacks`` list.

    Long campaigns survive crashes: ``run(n, checkpoint_every=k,
    checkpoint_path=p)`` writes a full program checkpoint every ``k``
    steps, and :meth:`resume` continues bit-identically from one.
    """

    def __init__(self, program, loop: ForallLoop, obs: str | None = None):
        """``obs="on"`` installs a :class:`repro.obs.Tracer` on the
        program's machine (same switch as ``IrregularProgram(obs=...)``;
        ``None`` leaves whatever the program configured)."""
        if obs is not None:
            if obs not in ("on", "off"):
                raise ValueError(f"unknown obs mode {obs!r}; choose on | off")
            if obs == "on" and not program.machine.obs.enabled:
                from repro.obs import Tracer

                program.machine.obs = Tracer()
        self.program = program
        self.loop = loop
        self.history: list[dict] = []
        #: set by :meth:`resume`: ``"primary"`` normally, ``"prev"`` when
        #: the primary checkpoint was damaged and the rotated ``.prev``
        #: generation was restored instead (a degraded-but-safe resume)
        self.resumed_from: str | None = None

    def step(self) -> str:
        prog = self.program
        machine = prog.machine
        adapt = prog.adapt
        before = (
            prog.inspector_runs,
            prog.patch_hits,
            machine.phase_time("inspector"),
            len(adapt.fallback_log) if adapt is not None else 0,
            prog.inspect_wall,
        )
        with machine.obs.span("adapt.step", loop=self.loop.name) as step_span:
            prog.forall(self.loop, n_times=1)
            if prog.inspector_runs > before[0]:
                mode = "full"
            elif prog.patch_hits > before[1]:
                mode = "patch"
            else:
                mode = "reuse"
            step_span.set(mode=mode)
        self.history.append(
            {
                "mode": mode,
                "inspector_time": machine.phase_time("inspector") - before[2],
                # host wall spent deciding + satisfying this step's
                # inspection (reuse check, diff + patch, or full run):
                # the number the wall-proportionality bench gate reads
                "inspect_wall_seconds": prog.inspect_wall - before[4],
                "fallbacks": (
                    list(adapt.fallback_log[before[3] :])
                    if adapt is not None
                    else []
                ),
            }
        )
        return mode

    def run(
        self,
        n_steps: int,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
    ) -> list[str]:
        """Run ``n_steps`` sweeps; optionally checkpoint every ``k`` steps.

        With ``checkpoint_every=k`` (requires ``checkpoint_path``), the
        full program + driver state is serialized after every ``k``-th
        step; a later :meth:`resume` from that file continues the
        campaign bit-identically with an uninterrupted run.
        """
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_path is None:
                raise ValueError("checkpoint_every needs a checkpoint_path")
        modes = []
        for i in range(n_steps):
            modes.append(self.step())
            if checkpoint_every is not None and (i + 1) % checkpoint_every == 0:
                self.checkpoint(checkpoint_path)
        return modes

    def checkpoint(self, path) -> None:
        """Serialize program + driver state to ``path`` (versioned, CRC'd)."""
        from repro.guard.checkpoint import save_checkpoint

        save_checkpoint(path, self.program, driver=self)

    @classmethod
    def resume(cls, path, program, loop: ForallLoop) -> "AdaptiveExecutor":
        """Rebuild an executor mid-campaign from a checkpoint file.

        ``program`` must be a freshly constructed program with the same
        shape (machine size, arrays, options) as the checkpointed one;
        ``loop`` is the campaign loop (loops hold callables, so they are
        re-bound rather than serialized).  The restored executor's next
        :meth:`step` produces the same simulated numbers the
        uninterrupted run would have.

        When the primary file fails its CRC (or is otherwise unreadable)
        and a rotated ``<path>.prev`` generation exists, the resume
        falls back to it -- a kill mid-write or later disk corruption
        costs at most one checkpoint interval, never the campaign.  The
        executor records which generation it came from in
        ``resumed_from`` (``"primary"`` or ``"prev"``).
        """
        import os

        from repro.guard.checkpoint import (
            load_checkpoint,
            previous_checkpoint_path,
            restore_checkpoint,
        )
        from repro.guard.errors import CheckpointError

        exe = cls(program, loop)
        source = "primary"
        try:
            # validate the envelope before any program state is touched:
            # a damaged primary must be able to fall back cleanly
            load_checkpoint(path)
        except CheckpointError:
            prev = previous_checkpoint_path(path)
            if not os.path.exists(prev):
                raise
            load_checkpoint(prev)  # damaged too -> CheckpointError, no fallback
            path = prev
            source = "prev"
        restore_checkpoint(path, program, {loop.name: loop}, driver=exe)
        exe.resumed_from = source
        return exe

    def mode_counts(self) -> dict[str, int]:
        out = {"full": 0, "reuse": 0, "patch": 0}
        for rec in self.history:
            out[rec["mode"]] += 1
        return out

    def inspector_time(self, mode: str | None = None) -> float:
        return sum(
            rec["inspector_time"]
            for rec in self.history
            if mode is None or rec["mode"] == mode
        )
