"""Interpreter edge cases: scalars, CYCLIC, LOAD clauses, hand path."""

import numpy as np
import pytest

from repro.lang import run_program
from repro.machine import Machine


class TestScalars:
    def test_scalar_binding_in_expression(self):
        src = """
        REAL*8 x(n), y(n)
        INTEGER ia(n)
        DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN x, y, ia WITH reg
        FORALL i = 1, n
          y(ia(i)) = alpha * x(ia(i))
        END FORALL
        """
        n = 8
        cp = run_program(
            src,
            Machine(2),
            sizes={"N": n},
            data={"X": np.arange(float(n)), "IA": np.arange(n)},
            scalars={"ALPHA": 3.0},
        )
        assert np.allclose(cp.array_global("Y"), 3.0 * np.arange(n))

    def test_scalar_in_loop_bound(self):
        src = """
        REAL*8 x(n), y(n)
        INTEGER ia(half)
        DECOMPOSITION reg(n), reg2(half)
        DISTRIBUTE reg(BLOCK), reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN ia WITH reg2
        FORALL i = 1, half
          REDUCE (ADD, y(ia(i)), x(ia(i)))
        END FORALL
        """
        cp = run_program(
            src,
            Machine(2),
            sizes={"N": 8, "HALF": 4},
            data={"X": np.ones(8), "IA": np.array([0, 1, 2, 3])},
        )
        assert cp.array_global("Y").sum() == pytest.approx(4.0)


class TestDistributions:
    def test_cyclic_distribute(self):
        src = """
        REAL*8 x(n), y(n)
        INTEGER ia(n)
        DECOMPOSITION reg(n)
        DISTRIBUTE reg(CYCLIC)
        ALIGN x, y, ia WITH reg
        FORALL i = 1, n
          y(ia(i)) = x(ia(i)) + 1.0
        END FORALL
        """
        n = 10
        cp = run_program(
            src,
            Machine(2),
            sizes={"N": n},
            data={"X": np.arange(float(n)), "IA": np.arange(n)},
        )
        assert cp.program.arrays["X"].distribution.kind == "cyclic"
        assert np.allclose(cp.array_global("Y"), np.arange(n) + 1)


class TestConstructClauses:
    def test_load_clause_through_lang(self):
        src = """
        REAL*8 x(n), y(n), w(n)
        INTEGER ia(n)
        DYNAMIC, DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN x, y, w, ia WITH reg
        C$ CONSTRUCT G (n, LOAD(w))
        C$ SET fmt BY PARTITIONING G USING LOAD
        C$ REDISTRIBUTE reg(fmt)
        FORALL i = 1, n
          REDUCE (ADD, y(ia(i)), x(ia(i)))
        END FORALL
        """
        n = 12
        rng = np.random.default_rng(0)
        w = rng.uniform(1, 10, n)
        ia = rng.integers(0, n, n)
        x = rng.normal(size=n)
        cp = run_program(
            src,
            Machine(4),
            sizes={"N": n},
            data={"X": x, "W": w, "IA": ia},
        )
        want = np.zeros(n)
        np.add.at(want, ia, x[ia])
        assert np.allclose(cp.array_global("Y"), want)
        assert cp.program.arrays["X"].distribution.kind == "irregular"

    def test_geometry_and_load_combined(self):
        src = """
        REAL*8 x(n), y(n), xc(n), w(n)
        INTEGER ia(n)
        DYNAMIC, DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN x, y, xc, w, ia WITH reg
        C$ CONSTRUCT G (n, GEOMETRY(1, xc), LOAD(w))
        C$ SET fmt BY PARTITIONING G USING RCB
        C$ REDISTRIBUTE reg(fmt)
        FORALL i = 1, n
          y(i) = x(ia(i))
        END FORALL
        """
        n = 16
        rng = np.random.default_rng(1)
        cp = run_program(
            src,
            Machine(4),
            sizes={"N": n},
            data={
                "X": rng.normal(size=n),
                "XC": rng.normal(size=n),
                "W": np.ones(n),
                "IA": rng.integers(0, n, n),
            },
        )
        g = cp.program.geocols["G"]
        assert g.geometry is not None and g.load is not None


class TestProgramOptions:
    def test_hand_path_through_lang(self):
        """track=False flows through run_program's program kwargs."""
        src = """
        REAL*8 x(n), y(n)
        INTEGER ia(n)
        DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN x, y, ia WITH reg
        DO t = 1, 3
          FORALL i = 1, n
            REDUCE (ADD, y(ia(i)), x(ia(i)))
          END FORALL
        END DO
        """
        cp = run_program(
            src,
            Machine(2),
            sizes={"N": 6},
            data={"X": np.ones(6), "IA": np.arange(6)},
            track=False,
        )
        assert cp.program.registry.nmod == 0  # nothing tracked
        assert np.allclose(cp.array_global("Y"), 3.0)

    def test_coalescing_through_lang(self):
        src = """
        REAL*8 x(n), y(n)
        INTEGER e1(m), e2(m)
        DECOMPOSITION reg(n), reg2(m)
        DISTRIBUTE reg(BLOCK), reg2(BLOCK)
        ALIGN x, y WITH reg
        ALIGN e1, e2 WITH reg2
        FORALL i = 1, m
          REDUCE (ADD, y(e1(i)), x(e1(i)) * x(e2(i)))
          REDUCE (ADD, y(e2(i)), x(e1(i)) + x(e2(i)))
        END FORALL
        """
        rng = np.random.default_rng(2)
        n, m_edges = 12, 30
        data = {
            "X": rng.normal(size=n),
            "E1": rng.integers(0, n, m_edges),
            "E2": rng.integers(0, n, m_edges),
        }
        outs = {}
        for co in (False, True):
            cp = run_program(
                src,
                Machine(4),
                sizes={"N": n, "M": m_edges},
                data=data,
                coalesce_patterns=co,
            )
            outs[co] = cp.array_global("Y")
        assert np.allclose(outs[False], outs[True])


class TestMultipleStatementsInDo:
    def test_do_with_two_foralls(self):
        src = """
        REAL*8 x(n), y(n), z(n)
        INTEGER ia(n)
        DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN x, y, z, ia WITH reg
        DO t = 1, 2
          FORALL i = 1, n
            REDUCE (ADD, y(ia(i)), x(ia(i)))
          END FORALL
          FORALL i = 1, n
            REDUCE (ADD, z(i), x(i))
          END FORALL
        END DO
        """
        n = 8
        cp = run_program(
            src,
            Machine(2),
            sizes={"N": n},
            data={"X": np.ones(n), "IA": np.arange(n)},
        )
        assert np.allclose(cp.array_global("Y"), 2.0)
        assert np.allclose(cp.array_global("Z"), 2.0)
        # Conservatism on display: y and z share ia's DAD (every array
        # here is block(8,2)), so the sweeps' own writes invalidate the
        # first loop's record each trip -- it re-inspects on trip 2.
        # The second loop has no indirection arrays, so it reuses.
        assert cp.program.inspector_runs == 3
        assert cp.program.reuse_hits == 1
