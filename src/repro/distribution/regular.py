"""Regular (closed-form) Fortran D distributions: BLOCK, CYCLIC, BLOCK-CYCLIC."""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution


class BlockDistribution(Distribution):
    """HPF BLOCK: contiguous chunks of ``ceil(size / n_procs)`` elements.

    The final processors may own fewer (or zero) elements when the size is
    not divisible, matching the HPF definition.
    """

    kind = "block"

    def __init__(self, size: int, n_procs: int):
        super().__init__(size, n_procs)
        self.chunk = -(-self.size // self.n_procs) if self.size else 0

    def owner(self, gidx):
        g = self._check_gidx(gidx)
        return g // self.chunk if self.chunk else g

    def local_index(self, gidx):
        g = self._check_gidx(gidx)
        return g % self.chunk if self.chunk else g

    def _translate_checked(self, g):
        if not self.chunk:
            return g, g
        return g // self.chunk, g % self.chunk

    def global_index(self, p: int, lidx):
        self._check_proc(p)
        li = np.asarray(lidx, dtype=np.int64)
        n = self.local_size(p)
        if li.size and (li.min() < 0 or li.max() >= n):
            raise IndexError(f"local index out of range [0, {n}) on processor {p}")
        return p * self.chunk + li

    def local_size(self, p: int) -> int:
        self._check_proc(p)
        if not self.chunk:
            return 0
        lo = p * self.chunk
        hi = min(lo + self.chunk, self.size)
        return max(hi - lo, 0)

    def local_sizes(self) -> np.ndarray:
        if not self.chunk:
            return np.zeros(self.n_procs, dtype=np.int64)
        lo = np.arange(self.n_procs, dtype=np.int64) * self.chunk
        return np.clip(self.size - lo, 0, self.chunk)

    def global_perm_is_identity(self) -> bool:
        return True

    def _build_global_perm(self) -> np.ndarray:
        return np.arange(self.size, dtype=np.int64)

    def _build_global_perm_inverse(self) -> np.ndarray:
        return np.arange(self.size, dtype=np.int64)


class CyclicDistribution(Distribution):
    """HPF CYCLIC: element g lives on processor ``g mod P``."""

    kind = "cyclic"

    def owner(self, gidx):
        g = self._check_gidx(gidx)
        return g % self.n_procs

    def local_index(self, gidx):
        g = self._check_gidx(gidx)
        return g // self.n_procs

    def _translate_checked(self, g):
        return g % self.n_procs, g // self.n_procs

    def global_index(self, p: int, lidx):
        self._check_proc(p)
        li = np.asarray(lidx, dtype=np.int64)
        n = self.local_size(p)
        if li.size and (li.min() < 0 or li.max() >= n):
            raise IndexError(f"local index out of range [0, {n}) on processor {p}")
        return li * self.n_procs + p

    def local_size(self, p: int) -> int:
        self._check_proc(p)
        full, extra = divmod(self.size, self.n_procs)
        return full + (1 if p < extra else 0)

    def local_sizes(self) -> np.ndarray:
        full, extra = divmod(self.size, self.n_procs)
        sizes = np.full(self.n_procs, full, dtype=np.int64)
        sizes[:extra] += 1
        return sizes

    def _build_global_perm(self) -> np.ndarray:
        # flat slot s on processor p at local offset l holds g = l * P + p
        starts = self.flat_offsets()
        p_of = np.repeat(
            np.arange(self.n_procs, dtype=np.int64), self.local_sizes()
        )
        l_of = np.arange(self.size, dtype=np.int64) - starts[p_of]
        return l_of * self.n_procs + p_of

    def _build_global_perm_inverse(self) -> np.ndarray:
        g = np.arange(self.size, dtype=np.int64)
        return self.flat_offsets()[g % self.n_procs] + g // self.n_procs


class BlockCyclicDistribution(Distribution):
    """HPF CYCLIC(b): blocks of ``b`` dealt round-robin to processors."""

    kind = "block_cyclic"

    def __init__(self, size: int, n_procs: int, block: int):
        super().__init__(size, n_procs)
        if block < 1:
            raise ValueError(f"block size must be positive, got {block}")
        self.block = int(block)

    def owner(self, gidx):
        g = self._check_gidx(gidx)
        return (g // self.block) % self.n_procs

    def local_index(self, gidx):
        g = self._check_gidx(gidx)
        blk = g // self.block
        local_blk = blk // self.n_procs
        return local_blk * self.block + g % self.block

    def _translate_checked(self, g):
        blk = g // self.block
        return blk % self.n_procs, (blk // self.n_procs) * self.block + g % self.block

    def global_index(self, p: int, lidx):
        self._check_proc(p)
        li = np.asarray(lidx, dtype=np.int64)
        n = self.local_size(p)
        if li.size and (li.min() < 0 or li.max() >= n):
            raise IndexError(f"local index out of range [0, {n}) on processor {p}")
        local_blk, off = li // self.block, li % self.block
        return (local_blk * self.n_procs + p) * self.block + off

    def local_size(self, p: int) -> int:
        self._check_proc(p)
        n_blocks = -(-self.size // self.block) if self.size else 0
        full, extra = divmod(n_blocks, self.n_procs)
        mine = full + (1 if p < extra else 0)
        if mine == 0:
            return 0
        # last block owned by p may be the globally last, possibly short
        last_blk = (mine - 1) * self.n_procs + p
        count = mine * self.block
        if last_blk == n_blocks - 1:
            count -= n_blocks * self.block - self.size
        return count

    def signature(self) -> tuple:
        return (self.kind, self.size, self.n_procs, self.block)
