"""Weight handling: weighted-median splits and the LOAD-only partitioner.

"Vertex weights can be used as a sole partitioning criterion in
embarrassingly parallel problems" (Section 4.1.1) -- that is
:class:`LoadPartitioner`.  The weighted-median split is the primitive the
recursive bisection partitioners (RCB/RIB/RSB) share: order vertices by a
key and cut so the two sides carry prescribed fractions of total weight.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import (
    PartitionProblem,
    PartitionResult,
    Partitioner,
    register_partitioner,
)


def weighted_median_split(
    key: np.ndarray, weights: np.ndarray, left_fraction: float = 0.5
) -> np.ndarray:
    """Boolean mask of the 'left' side of a weighted split along ``key``.

    Vertices are ordered by ``key``; the cut is placed so the left side's
    weight is as close as possible to ``left_fraction`` of the total,
    with ties broken deterministically by sort order.  Every split leaves
    both sides non-empty when there are at least two vertices.
    """
    key = np.asarray(key, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if key.shape != weights.shape:
        raise ValueError(f"key shape {key.shape} != weights shape {weights.shape}")
    if not 0.0 < left_fraction < 1.0:
        raise ValueError(f"left_fraction must be in (0, 1), got {left_fraction}")
    n = key.size
    mask = np.zeros(n, dtype=bool)
    if n == 0:
        return mask
    if n == 1:
        mask[0] = True
        return mask
    order = np.argsort(key, kind="stable")
    cum = np.cumsum(weights[order])
    total = cum[-1]
    if total <= 0:
        k = max(1, int(round(n * left_fraction)))
    else:
        target = left_fraction * total
        k = int(np.searchsorted(cum, target, side="left")) + 1
        k = min(max(k, 1), n - 1)
    mask[order[:k]] = True
    return mask


@register_partitioner("LOAD")
class LoadPartitioner(Partitioner):
    """Greedy list scheduling on vertex weights (longest-processing-time).

    Ignores connectivity and geometry entirely: appropriate when
    computational cost dominates and communication is negligible.
    """

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        self.validate(problem, n_parts)
        w = problem.effective_weights()
        n = problem.n_vertices
        owners = np.empty(n, dtype=np.int64)
        loads = np.zeros(n_parts, dtype=np.float64)
        # LPT: place heaviest first on the lightest part.  A binary heap
        # would be O(n log P); argmin per step is fine at these sizes and
        # we charge the modeled parallel cost, not Python's.
        for v in np.argsort(-w, kind="stable"):
            p = int(np.argmin(loads))
            owners[v] = p
            loads[p] += w[v]
        return PartitionResult(
            owner_map=owners,
            n_parts=n_parts,
            iops=float(n) * (np.log2(max(n, 2)) + np.log2(max(n_parts, 2))),
            flops=float(n),
            sync_rounds=1,
            info={"max_load": float(loads.max(initial=0.0))},
        )
