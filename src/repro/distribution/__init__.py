"""Distributed-array layer.

Long-term storage of a distributed array is assigned to specific processor
memories through a :class:`Distribution`: a mapping from global indices to
``(owner processor, local offset)`` pairs.  Fortran D's regular
distributions (BLOCK, CYCLIC, BLOCK-CYCLIC) are closed-form; the paper's
central object is the *irregular* distribution, an arbitrary owner map
produced by a partitioner.

``Decomposition`` mirrors the Fortran D template (DECOMPOSITION /
DISTRIBUTE / ALIGN): arrays aligned with a decomposition share its
distribution and are remapped together when it is redistributed.

``DistArray`` stores the actual per-processor local segments (NumPy
arrays) and binds them to a distribution on a simulated machine.
"""

from repro.distribution.base import Distribution
from repro.distribution.regular import (
    BlockDistribution,
    CyclicDistribution,
    BlockCyclicDistribution,
)
from repro.distribution.irregular import (
    ExplicitDistribution,
    IrregularDistribution,
    RebalancePlan,
    repartition_stable,
)
from repro.distribution.decomposition import Decomposition
from repro.distribution.distarray import DistArray

__all__ = [
    "Distribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "IrregularDistribution",
    "ExplicitDistribution",
    "RebalancePlan",
    "repartition_stable",
    "Decomposition",
    "DistArray",
]
