"""Input validation at the program boundary and the timestamp registry.

Malformed updates must be rejected *before* any state is mutated -- a
bad write that half-lands would silently poison the incremental
inspector's dirty-region bookkeeping.
"""

import numpy as np
import pytest

from repro.core.dad import DAD
from repro.core.timestamps import (
    ModificationRegistry,
    normalize_ranges,
    ranges_from_positions,
)
from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import setup_euler_program


@pytest.fixture()
def prog():
    mesh = generate_mesh(120, seed=2)
    return setup_euler_program(Machine(2), mesh, seed=5)


class TestSetArrayElements:
    def test_empty_update_rejected(self, prog):
        with pytest.raises(ValueError, match="empty update"):
            prog.set_array_elements("end_pt2", np.array([], dtype=np.int64), [])

    def test_float_positions_rejected(self, prog):
        with pytest.raises(ValueError, match="must be integers"):
            prog.set_array_elements("end_pt2", np.array([1.0, 2.0]), [3, 4])

    def test_2d_positions_rejected(self, prog):
        with pytest.raises(ValueError, match="must be 1-D"):
            prog.set_array_elements("end_pt2", np.array([[1, 2]]), [[3, 4]])

    def test_shape_mismatch_rejected(self, prog):
        with pytest.raises(ValueError, match="shape"):
            prog.set_array_elements("end_pt2", np.array([1, 2]), [3])

    def test_out_of_range_rejected(self, prog):
        size = prog.arrays["end_pt2"].size
        with pytest.raises(ValueError, match="out of range"):
            prog.set_array_elements("end_pt2", np.array([size]), [0])
        with pytest.raises(ValueError, match="out of range"):
            prog.set_array_elements("end_pt2", np.array([-1]), [0])

    def test_unsafe_cast_rejected(self, prog):
        with pytest.raises(ValueError, match="cannot safely write"):
            prog.set_array_elements("end_pt2", np.array([1]), np.array([2.5]))

    def test_rejected_update_mutates_nothing(self, prog):
        before = prog.arrays["end_pt2"].to_global().copy()
        nmod = prog.registry.nmod
        with pytest.raises(ValueError):
            prog.set_array_elements("end_pt2", np.array([1, 2]), [3])
        assert np.array_equal(prog.arrays["end_pt2"].to_global(), before)
        assert prog.registry.nmod == nmod


class TestTimestampValidation:
    def test_normalize_ranges_rejects_floats(self):
        with pytest.raises(ValueError, match="integer"):
            normalize_ranges(np.array([[0.0, 2.0]]))

    def test_normalize_ranges_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            normalize_ranges(np.array([0, 2, 4]))

    def test_normalize_ranges_rejects_inverted(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            normalize_ranges(np.array([[4, 2]]))

    def test_normalize_ranges_rejects_oversize(self):
        with pytest.raises(ValueError, match="exceeds array size"):
            normalize_ranges(np.array([[0, 10]]), size=8)

    def test_ranges_from_positions_rejects_floats(self):
        with pytest.raises(ValueError, match="integers"):
            ranges_from_positions(np.array([1.5]))

    def test_ranges_from_positions_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            ranges_from_positions(np.array([-3]))

    def test_record_block_write_rejects_non_dad(self):
        reg = ModificationRegistry()
        with pytest.raises(ValueError, match="DAD instances"):
            reg.record_block_write(["not-a-dad"])

    def test_record_block_write_rejects_misaligned_regions(self):
        reg = ModificationRegistry()
        dad = DAD(kind="block", size=8, signature=("block", 8, 2))
        with pytest.raises(ValueError, match="region entries"):
            reg.record_block_write([dad], regions=[])

    def test_dirty_ranges_rejects_negative_since(self):
        reg = ModificationRegistry()
        dad = DAD(kind="block", size=8, signature=("block", 8, 2))
        with pytest.raises(ValueError, match="since"):
            reg.dirty_ranges(dad, since=-1)
