"""Config identity and the self-healing result cache."""

import json
import os

import pytest

from repro.serve import JobConfig, ResultCache, config_key


class TestJobConfig:
    def test_key_is_stable_and_order_free(self):
        a = JobConfig(scenario="adapt", n_nodes=300, steps=6, seed=1)
        b = JobConfig(seed=1, steps=6, n_nodes=300, scenario="adapt")
        assert config_key(a) == config_key(b)

    def test_simulated_fields_change_the_key(self):
        base = JobConfig(scenario="adapt", n_nodes=300, steps=6)
        for variant in (
            JobConfig(scenario="sweep", n_nodes=300, steps=6),
            JobConfig(scenario="adapt", n_nodes=301, steps=6),
            JobConfig(scenario="adapt", n_nodes=300, steps=7),
            JobConfig(scenario="adapt", n_nodes=300, steps=6, seed=9),
            JobConfig(scenario="adapt", n_nodes=300, steps=6, n_procs=16),
            JobConfig(scenario="adapt", n_nodes=300, steps=6, partitioner="RIB"),
            JobConfig(
                scenario="adapt", n_nodes=300, steps=6,
                faults=(("corrupt_gather", 0),),
            ),
        ):
            assert config_key(variant) != config_key(base)

    def test_host_only_fields_do_not_change_the_key(self):
        base = JobConfig(scenario="adapt", n_nodes=300, steps=6)
        scripted = JobConfig(
            scenario="adapt", n_nodes=300, steps=6,
            crash_at_step=2, crash_attempts=3,
            corrupt_checkpoint_on_crash=True, step_delay_s=0.5,
        )
        assert config_key(scripted) == config_key(base)

    def test_round_trips_through_plain_dicts(self):
        cfg = JobConfig(
            scenario="rebalance", n_nodes=256, steps=5,
            faults=(("corrupt_remap", 3),),
        )
        d = json.loads(json.dumps(cfg.simulated_fields()))
        back = JobConfig.from_dict(d)
        assert config_key(back) == config_key(cfg)

    def test_validation(self):
        with pytest.raises(ValueError, match="scenario"):
            JobConfig(scenario="warp")
        with pytest.raises(ValueError, match="steps"):
            JobConfig(steps=0)
        with pytest.raises(ValueError, match="workload"):
            JobConfig(workload="navier")
        with pytest.raises(ValueError, match="unknown JobConfig fields"):
            JobConfig.from_dict({"scenario": "adapt", "bogus": 1})


PAYLOAD = {"simulated_total": 1.5, "mode_counts": {"full": 1}, "steps": 3}


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("k" * 8) is None
        cache.put("k" * 8, PAYLOAD)
        assert cache.get("k" * 8) == PAYLOAD
        assert cache.stats() == {
            "hits": 1, "misses": 1, "corrupt": 0, "entries": 1
        }

    @pytest.mark.parametrize(
        "damage",
        [
            lambda p: open(p, "r+b").truncate(20),
            lambda p: open(p, "wb").write(b"\x00" * 64),
            lambda p: open(p, "w").write('{"format": "something-else"}'),
            lambda p: open(p, "w").write(
                '{"format": "repro-serve-result", "version": 1, '
                '"crc": 1, "payload": {"simulated_total": 2.0}}'
            ),
        ],
        ids=["truncated", "binary-garbage", "wrong-format", "bad-crc"],
    )
    def test_damage_is_quarantined_and_healed(self, tmp_path, damage):
        cache = ResultCache(str(tmp_path))
        cache.put("deadbeef", PAYLOAD)
        damage(cache.path("deadbeef"))
        assert cache.get("deadbeef") is None  # never serves damaged bytes
        assert cache.corrupt == 1
        assert os.path.exists(cache.path("deadbeef") + ".quarantine")
        assert cache.quarantined[0]["key"] == "deadbeef"
        # recompute-and-reput heals the entry
        cache.put("deadbeef", PAYLOAD)
        assert cache.get("deadbeef") == PAYLOAD

    def test_no_tmp_litter(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("abc123", PAYLOAD)
        assert [n for n in os.listdir(tmp_path) if ".tmp" in n] == []
