"""Unit coverage for the span tracer and the structured event bus."""

import pytest

from repro.obs import NULL_TRACER, EventBus, NullTracer, Tracer, aggregate_spans


class TestTracer:
    def test_nesting_and_parent_linkage(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner_a"):
                pass
            with tr.span("inner_b"):
                pass
        inner_a, inner_b, outer = tr.spans
        assert [s.name for s in tr.spans] == ["inner_a", "inner_b", "outer"]
        assert outer.parent is None
        assert inner_a.parent == outer.id
        assert inner_b.parent == outer.id
        assert inner_a.id != inner_b.id
        # siblings are disjoint in time and inside the parent window
        assert outer.t0_ns <= inner_a.t0_ns
        assert inner_a.t0_ns + inner_a.dur_ns <= inner_b.t0_ns
        assert inner_b.t0_ns + inner_b.dur_ns <= outer.t0_ns + outer.dur_ns

    def test_attrs_at_open_and_mid_span(self):
        tr = Tracer()
        with tr.span("s", loop="L2") as sp:
            sp.set(n_changed=7)
        (rec,) = tr.spans
        assert rec.attrs == {"loop": "L2", "n_changed": 7}

    def test_exception_unwinds_parent_stack(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("boom"):
                    raise RuntimeError("x")
        # both spans closed despite the exception; stack is clean
        assert [s.name for s in tr.spans] == ["boom", "outer"]
        with tr.span("after"):
            pass
        assert tr.spans[-1].parent is None

    def test_counters_and_instants(self):
        tr = Tracer()
        tr.counter("hits")
        tr.counter("hits", 2)
        tr.event("mark", detail="d")
        assert tr.counters == {"hits": 3}
        (ev,) = tr.events
        assert ev["kind"] == "instant" and ev["name"] == "mark"
        assert ev["attrs"] == {"detail": "d"}

    def test_bounded_buffer_counts_drops(self):
        tr = Tracer(max_spans=2)
        for i in range(5):
            with tr.span(f"s{i}"):
                pass
        assert len(tr.spans) == 2
        assert tr.dropped == 3

    def test_retroactive_record(self):
        tr = Tracer()
        pid = tr.record("job", t0_ns=100, dur_ns=50, attempt=1)
        tr.record("step", t0_ns=110, dur_ns=10, parent=pid)
        job, step = tr.spans
        assert job.attrs == {"attempt": 1}
        assert step.parent == pid

    def test_clear(self):
        tr = Tracer(max_spans=1)
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        tr.counter("c")
        tr.clear()
        assert not tr.spans and not tr.counters and tr.dropped == 0


class TestNullTracer:
    def test_shared_noop_singleton(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("x", attr=1) as sp:
            assert sp.set(more=2) is sp
        NULL_TRACER.counter("c")
        NULL_TRACER.event("e")
        NULL_TRACER.record("r", 0, 0)
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.counters == {}
        # span() hands out one shared stateless context manager
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestAggregateSpans:
    def test_self_time_subtracts_direct_children(self):
        tr = Tracer()
        parent = tr.record("outer", t0_ns=0, dur_ns=1_000_000_000)
        tr.record("leaf", t0_ns=0, dur_ns=600_000_000, parent=parent)
        agg = aggregate_spans(tr.spans)
        assert agg["outer"]["total_s"] == pytest.approx(1.0)
        assert agg["outer"]["self_s"] == pytest.approx(0.4)
        assert agg["leaf"]["self_s"] == pytest.approx(0.6)
        assert agg["outer"]["count"] == 1


class TestEventBus:
    def test_emit_orders_and_categorizes(self):
        bus = EventBus()
        bus.emit("a", "x", {"v": 1})
        bus.emit("b", "y", {"v": 2})
        bus.emit("a", "z", {"v": 3})
        assert [r.seq for r in bus.all()] == [0, 1, 2]
        assert [r.name for r in bus.category("a")] == ["x", "z"]
        assert bus.counts() == {"a": 2, "b": 1}

    def test_record_to_dict(self):
        bus = EventBus()
        rec = bus.emit("guard", "verified", {"event": "verified", "ok": True})
        assert rec.to_dict() == {
            "kind": "event",
            "seq": 0,
            "category": "guard",
            "name": "verified",
            "payload": {"event": "verified", "ok": True},
        }


class TestEventLogView:
    """The view must be a drop-in for the legacy plain-list logs."""

    def test_append_iterate_index_truthiness(self):
        bus = EventBus()
        view = bus.view("guard", name_key="event")
        assert not view and len(view) == 0
        view.append({"event": "verified", "loop": "L2"})
        view.append({"event": "corrupted"})
        assert view and len(view) == 2
        assert view[0]["event"] == "verified"
        assert view[-1]["event"] == "corrupted"
        assert [e["event"] for e in view] == ["verified", "corrupted"]
        # tuple-unpack idiom used by existing tests
        (first, _second) = view
        assert first["loop"] == "L2"

    def test_name_key_lifts_event_names(self):
        bus = EventBus()
        fallback = bus.view("adapt.fallback", name_key="reason")
        fallback.append({"reason": "over_threshold", "n_changed": 9})
        (rec,) = bus.category("adapt.fallback")
        assert rec.name == "over_threshold"

    def test_slicing_and_equality(self):
        bus = EventBus()
        view = bus.view("c")
        items = [{"event": "a"}, {"event": "b"}, {"event": "c"}]
        view.extend(items)
        assert view[1:] == items[1:]
        assert view == items
        assert view != items[:2]
        assert view == bus.view("c")

    def test_whole_slice_assignment_only(self):
        bus = EventBus()
        view = bus.view("c")
        view.append({"event": "old"})
        restored = [{"event": "a"}, {"event": "b"}]
        view[:] = restored  # the checkpoint-restore idiom
        assert list(view) == restored
        with pytest.raises(TypeError, match="whole-slice"):
            view[0] = {"event": "nope"}
        with pytest.raises(TypeError, match="whole-slice"):
            view[1:] = [{"event": "nope"}]

    def test_views_share_the_bus(self):
        bus = EventBus()
        a = bus.view("shared")
        b = bus.view("shared")
        a.append({"event": "x"})
        assert list(b) == [{"event": "x"}]
        b.clear()
        assert not a and not bus.counts()
