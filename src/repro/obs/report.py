"""Render a trace file as a per-phase table + top-N hot spans.

``python -m repro.obs report <trace> [--top N]`` loads a JSONL or
Chrome trace (auto-detected) and prints:

* a **per-phase** host wall-time table -- root spans (no parent)
  grouped by name, with each phase's share of total root time;
* the **top-N hot spans** ranked by *self* time (duration minus direct
  children), so leaf work like ``adapt.state.build_adapt_state`` ranks
  above the umbrella spans that merely contain it;
* counter values and the dropped-span count, when present.
"""

from __future__ import annotations

from .export import load_trace


def summarize(trace: dict) -> dict:
    """Aggregate a loaded trace into phase and hot-span tables."""
    spans = trace["spans"]
    child_ns: dict = {}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None:
            child_ns[parent] = child_ns.get(parent, 0) + rec["dur_ns"]

    phases: dict[str, dict] = {}
    names: dict[str, dict] = {}
    for rec in spans:
        dur_s = rec["dur_ns"] * 1e-9
        self_s = (rec["dur_ns"] - child_ns.get(rec.get("id"), 0)) * 1e-9
        entry = names.setdefault(
            rec["name"], {"count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += dur_s
        entry["self_s"] += self_s
        if dur_s > entry["max_s"]:
            entry["max_s"] = dur_s
        if rec.get("parent") is None:
            ph = phases.setdefault(rec["name"], {"count": 0, "total_s": 0.0})
            ph["count"] += 1
            ph["total_s"] += dur_s

    root_total = sum(ph["total_s"] for ph in phases.values())
    for ph in phases.values():
        ph["share"] = ph["total_s"] / root_total if root_total else 0.0
    hot = sorted(names.items(), key=lambda kv: kv[1]["self_s"], reverse=True)
    return {
        "phases": phases,
        "names": names,
        "hot": hot,
        "root_total_s": root_total,
        "counters": trace.get("counters", {}),
        "n_spans": len(spans),
        "n_events": len(trace.get("events", [])),
        "dropped": trace.get("meta", {}).get("dropped_spans", 0),
    }


def render(summary: dict, top: int = 10) -> str:
    lines = []
    lines.append(
        f"{summary['n_spans']} spans, {summary['n_events']} events, "
        f"{summary['dropped']} dropped"
    )
    lines.append("")
    lines.append("per-phase host wall time (root spans):")
    lines.append(f"  {'phase':<32} {'count':>7} {'total_s':>10} {'share':>7}")
    for name, ph in sorted(
        summary["phases"].items(), key=lambda kv: kv[1]["total_s"], reverse=True
    ):
        lines.append(
            f"  {name:<32} {ph['count']:>7} {ph['total_s']:>10.4f} "
            f"{100 * ph['share']:>6.1f}%"
        )
    lines.append(f"  {'(total)':<32} {'':>7} {summary['root_total_s']:>10.4f}")
    lines.append("")
    lines.append(f"top {top} hot spans (by self time):")
    lines.append(
        f"  {'span':<36} {'count':>7} {'self_s':>10} {'total_s':>10} {'max_s':>9}"
    )
    for name, entry in summary["hot"][:top]:
        lines.append(
            f"  {name:<36} {entry['count']:>7} {entry['self_s']:>10.4f} "
            f"{entry['total_s']:>10.4f} {entry['max_s']:>9.4f}"
        )
    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(summary["counters"].items()):
            lines.append(f"  {name:<36} {value}")
    return "\n".join(lines)


def report(path: str, top: int = 10) -> str:
    return render(summarize(load_trace(path)), top=top)
