"""Tests for GeoCoL construction and the mapper coupler."""

import numpy as np
import pytest

from repro.core import construct_geocol, partition_geocol
from repro.distribution import BlockDistribution, DistArray
from repro.machine import Machine
from repro.partitioners import PartitionResult, edge_cut


@pytest.fixture
def m4():
    return Machine(4)


def mesh_arrays(m, n=16, n_edges=30, seed=0):
    rng = np.random.default_rng(seed)
    dist = BlockDistribution(n, 4)
    edist = BlockDistribution(n_edges, 4)
    e1 = rng.integers(0, n, n_edges)
    e2 = (e1 + 1 + rng.integers(0, n - 1, n_edges)) % n
    return {
        "xc": DistArray.from_global(m, dist, rng.normal(size=n), name="xc"),
        "yc": DistArray.from_global(m, dist, rng.normal(size=n), name="yc"),
        "w": DistArray.from_global(m, dist, rng.uniform(1, 2, n), name="w"),
        "e1": DistArray.from_global(m, edist, e1, name="e1"),
        "e2": DistArray.from_global(m, edist, e2, name="e2"),
    }


class TestConstruct:
    def test_geometry_only(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G1", 16, geometry=[a["xc"], a["yc"]])
        assert g.geometry.shape == (2, 16)
        assert g.edges is None and g.load is None
        prob = g.to_problem()
        assert prob.coords is not None and prob.edges is None

    def test_load_only(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G2", 16, load=a["w"])
        assert g.load.shape == (16,)

    def test_link_only(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G3", 16, link=(a["e1"], a["e2"]))
        assert g.edges.shape == (2, 30)
        assert g.n_edges == 30

    def test_combined(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(
            m4, "G4", 16, geometry=[a["xc"]], load=a["w"], link=(a["e1"], a["e2"])
        )
        assert g.geometry is not None and g.load is not None and g.edges is not None

    def test_tracks_source_dads(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G", 16, geometry=[a["xc"]], link=(a["e1"], a["e2"]))
        assert set(g.source_dads) == {"xc", "e1", "e2"}

    def test_nothing_specified_rejected(self, m4):
        with pytest.raises(ValueError, match="at least one"):
            construct_geocol(m4, "G", 16)

    def test_geometry_size_mismatch(self, m4):
        a = mesh_arrays(m4)
        with pytest.raises(ValueError, match="size 16"):
            construct_geocol(m4, "G", 20, geometry=[a["xc"]])

    def test_edge_range_checked(self, m4):
        a = mesh_arrays(m4)
        with pytest.raises(ValueError, match="endpoints"):
            construct_geocol(m4, "G", 10, link=(a["e1"], a["e2"]))

    def test_edge_list_size_mismatch(self, m4):
        a = mesh_arrays(m4)
        short = DistArray.from_global(
            m4, BlockDistribution(10, 4), np.zeros(10, dtype=np.int64)
        )
        with pytest.raises(ValueError, match="different sizes"):
            construct_geocol(m4, "G", 16, link=(a["e1"], short))

    def test_charges_generation(self, m4):
        a = mesh_arrays(m4)
        before = m4.elapsed()
        construct_geocol(m4, "G", 16, link=(a["e1"], a["e2"]))
        assert m4.elapsed() > before


class TestMapperCoupler:
    def test_partition_by_name(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G", 16, geometry=[a["xc"], a["yc"]])
        dist, result = partition_geocol(m4, g, "RCB")
        assert dist.size == 16 and dist.n_procs == 4
        assert set(np.unique(dist.owner_map())) <= {0, 1, 2, 3}

    def test_partition_rsb_uses_links(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G", 16, link=(a["e1"], a["e2"]))
        dist, result = partition_geocol(m4, g, "RSB")
        cut = edge_cut(g.edges, dist.owner_map())
        assert cut < g.n_edges  # something got localized

    def test_charges_modeled_cost(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G", 16, geometry=[a["xc"]])
        before = m4.elapsed()
        partition_geocol(m4, g, "RCB")
        assert m4.elapsed() > before

    def test_rsb_charged_more_than_rcb(self):
        # needs a graph big enough for the modeled Lanczos cost to show
        times = {}
        for name in ("RCB", "RSB"):
            m = Machine(4)
            a = mesh_arrays(m, n=400, n_edges=1600, seed=2)
            g = construct_geocol(
                m, "G", 400, geometry=[a["xc"]], link=(a["e1"], a["e2"])
            )
            m.reset()
            partition_geocol(m, g, name)
            times[name] = m.elapsed()
        assert times["RSB"] > 3 * times["RCB"]

    def test_custom_partitioner_object(self, m4):
        class Custom:
            def partition(self, problem, n_parts):
                return PartitionResult(
                    owner_map=np.arange(problem.n_vertices) % n_parts,
                    n_parts=n_parts,
                    iops=float(problem.n_vertices),
                )

        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G", 16, geometry=[a["xc"]])
        dist, _ = partition_geocol(m4, g, Custom())
        assert dist.owner_map().tolist() == (np.arange(16) % 4).tolist()

    def test_non_partitioner_rejected(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G", 16, geometry=[a["xc"]])
        with pytest.raises(TypeError, match="calling sequence|partition"):
            partition_geocol(m4, g, object())

    def test_wrong_owner_count_detected(self, m4):
        class Broken:
            def partition(self, problem, n_parts):
                return PartitionResult(
                    owner_map=np.zeros(3, dtype=np.int64), n_parts=n_parts
                )

        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G", 16, geometry=[a["xc"]])
        with pytest.raises(ValueError, match="16 vertices"):
            partition_geocol(m4, g, Broken())

    def test_explicit_n_parts(self, m4):
        a = mesh_arrays(m4)
        g = construct_geocol(m4, "G", 16, geometry=[a["xc"]])
        dist, _ = partition_geocol(m4, g, "RCB", n_parts=2)
        assert set(np.unique(dist.owner_map())) <= {0, 1}
