"""Span tracer: bounded in-process buffer of host wall-time spans.

Two implementations share one duck-typed interface:

* :class:`Tracer` -- the real thing.  ``span(name, **attrs)`` returns a
  re-entrant context manager that stamps ``time.perf_counter_ns()`` on
  enter/exit and appends one :class:`SpanRecord` to a bounded buffer on
  exit.  Parent linkage comes from a per-tracer stack, so nesting falls
  out of ``with`` scoping.  ``counter(name, n)`` bumps a named integer;
  ``event(name, **attrs)`` records an instant; ``record(...)`` appends
  a span retroactively from timestamps measured elsewhere (used by the
  serve supervisor, whose job spans bracket another process's work).
* :class:`NullTracer` -- the no-op.  Every method body is a constant
  return; ``span()`` hands back one shared, stateless context manager.
  This is what every :class:`~repro.machine.machine.Machine` carries by
  default (``machine.obs``), so instrumented code pays one attribute
  load + one no-op call when tracing is off.

The buffer is bounded (``max_spans``); past the cap new spans are
counted in ``dropped`` instead of stored, so a long campaign cannot
grow host memory without bound.  Nothing in this module imports the
rest of ``repro`` -- the machine layer imports *it*.
"""

from __future__ import annotations

import itertools
import time


class SpanRecord:
    """One closed span: identity, timing, and free-form attributes."""

    __slots__ = ("id", "parent", "name", "t0_ns", "dur_ns", "attrs")

    def __init__(self, id, parent, name, t0_ns, dur_ns, attrs):
        self.id = id
        self.parent = parent
        self.name = name
        self.t0_ns = t0_ns
        self.dur_ns = dur_ns
        self.attrs = attrs

    def to_dict(self) -> dict:
        rec = {
            "kind": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "t0_ns": self.t0_ns,
            "dur_ns": self.dur_ns,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec


class _SpanCtx:
    """Live (open) span; becomes a :class:`SpanRecord` on ``__exit__``."""

    __slots__ = ("tracer", "id", "parent", "name", "t0_ns", "attrs")

    def __init__(self, tracer, name, attrs):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = None
        self.parent = None
        self.t0_ns = 0

    def set(self, **attrs):
        """Attach attributes discovered mid-span (e.g. result sizes)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        tracer = self.tracer
        self.id = next(tracer._ids)
        stack = tracer._stack
        self.parent = stack[-1] if stack else None
        stack.append(self.id)
        self.t0_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter_ns() - self.t0_ns
        tracer = self.tracer
        tracer._stack.pop()
        if len(tracer.spans) < tracer.max_spans:
            tracer.spans.append(
                SpanRecord(self.id, self.parent, self.name, self.t0_ns, dur, self.attrs)
            )
        else:
            tracer.dropped += 1
        return False


class _NullSpan:
    """Shared do-nothing context manager handed out by NullTracer."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the default ``machine.obs`` when tracing is off.

    Stateless and shared (:data:`NULL_TRACER`); ``enabled`` is False so
    call sites can skip attribute-dict construction entirely on hot
    paths (``if machine.obs.enabled: ...``).
    """

    __slots__ = ()

    enabled = False
    dropped = 0
    spans = ()
    counters = {}
    events = ()

    def span(self, name, **attrs):
        return _NULL_SPAN

    def counter(self, name, n=1):
        return None

    def event(self, name, **attrs):
        return None

    def record(self, name, t0_ns, dur_ns, parent=None, **attrs):
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Collecting tracer: bounded span buffer + counters + instants."""

    __slots__ = ("max_spans", "spans", "events", "counters", "dropped", "_ids", "_stack")

    enabled = True

    def __init__(self, max_spans: int = 1_000_000):
        self.max_spans = max_spans
        self.spans: list[SpanRecord] = []
        self.events: list[dict] = []
        self.counters: dict[str, int] = {}
        self.dropped = 0
        self._ids = itertools.count(1)
        self._stack: list[int] = []

    def span(self, name, **attrs):
        return _SpanCtx(self, name, attrs)

    def counter(self, name, n=1):
        self.counters[name] = self.counters.get(name, 0) + n

    def event(self, name, **attrs):
        """Record an instant (zero-duration point in time)."""
        if len(self.events) < self.max_spans:
            rec = {"kind": "instant", "name": name, "t_ns": time.perf_counter_ns()}
            if attrs:
                rec["attrs"] = attrs
            self.events.append(rec)
        else:
            self.dropped += 1

    def record(self, name, t0_ns, dur_ns, parent=None, **attrs):
        """Append a span retroactively from externally measured times.

        Used where the bracketing happens outside a ``with`` block --
        e.g. the serve supervisor closing a job span from worker
        timestamps.  Returns the span id (for use as a later parent).
        """
        sid = next(self._ids)
        if len(self.spans) < self.max_spans:
            self.spans.append(SpanRecord(sid, parent, name, t0_ns, dur_ns, attrs))
        else:
            self.dropped += 1
        return sid

    def clear(self):
        self.spans.clear()
        self.events.clear()
        self.counters.clear()
        self.dropped = 0
        self._stack.clear()
