"""Deterministic chaos harness: the service's correctness gate.

Two passes over the same set of job configs:

1. **reference** -- a quiet service, no faults, results collected;
2. **chaos** -- a fresh service (fresh cache) where every job is made to
   suffer: workers are killed mid-job (``crash_at_step``, twice for some
   jobs), a freshly written checkpoint is corrupted before one crash so
   the retry must fall back to the rotated ``.prev`` generation,
   :class:`~repro.guard.faults.FaultPlan` wire faults corrupt gather and
   remap traffic inside the simulation, duplicate submissions race the
   originals, and a finished cache entry is flipped on disk before being
   requested again.

The harness then asserts the service's whole contract:

* every chaos job completes (no fault leaks out as a failure);
* each result's :func:`~repro.serve.jobs.bit_identity` projection is
  **identical** to the reference run's -- crashes, resumes, retries and
  recovered data faults change nothing the simulation computed;
* duplicates coalesced onto one simulation;
* the corrupted cache entry was quarantined and recomputed to the same
  bits;
* every retry/resume/degradation left a structured event behind.

Everything is seeded; two runs of the harness do the same damage in the
same order.  ``python -m repro.serve chaos`` runs it in CI.
"""

from __future__ import annotations

from dataclasses import replace

from repro.serve.config import JobConfig
from repro.serve.jobs import bit_identity
from repro.serve.service import SimulationService


def chaos_configs(seed: int = 0) -> list[JobConfig]:
    """The job mix both passes run: small, fast, covering all scenarios."""
    return [
        JobConfig(
            scenario="adapt",
            n_nodes=300,
            n_procs=4,
            steps=6,
            checkpoint_every=2,
            seed=seed + 1,
            faults=(("corrupt_gather", 1),),
        ),
        JobConfig(
            scenario="rebalance",
            n_nodes=300,
            n_procs=4,
            steps=6,
            adapt_every=2,
            checkpoint_every=2,
            seed=seed + 2,
            faults=(("corrupt_remap", 5), ("duplicate_remap", 11)),
        ),
        JobConfig(
            scenario="sweep",
            n_nodes=240,
            n_procs=4,
            steps=4,
            checkpoint_every=2,
            seed=seed + 3,
        ),
        JobConfig(
            scenario="adapt",
            n_nodes=240,
            n_procs=8,
            steps=6,
            checkpoint_every=2,
            seed=seed + 4,
            faults=(("duplicate_gather", 2),),
        ),
    ]


def _chaos_variant(i: int, config: JobConfig) -> JobConfig:
    """Scripted host failures for chaos job ``i``.

    Every job crashes at least once mid-run; job 1 crashes twice; job 3
    also corrupts its just-written checkpoint before dying, forcing the
    retry through the ``.prev`` fallback (a ``degraded`` event).
    """
    crash_step = min(3, config.steps - 2)
    return replace(
        config,
        crash_at_step=crash_step,
        crash_attempts=2 if i == 1 else 1,
        corrupt_checkpoint_on_crash=(i == 3),
    )


class ChaosFailure(AssertionError):
    """The service broke its contract under injected faults."""


def _require(cond: bool, report: dict, message: str) -> None:
    if not cond:
        report["failures"].append(message)


def run_chaos(seed: int = 0, workers: int = 2, verbose: bool = False) -> dict:
    """Run the full chaos scenario; returns a structured report.

    Raises :class:`ChaosFailure` (with the report attached) if any
    contract assertion fails.
    """
    configs = chaos_configs(seed)
    report: dict = {"seed": seed, "jobs": len(configs), "failures": []}

    # ---- pass 1: fault-free reference --------------------------------
    with SimulationService(workers=workers, seed=seed) as svc:
        ref_jobs = [svc.submit(c) for c in configs]
        reference = [j.wait(timeout=600) for j in ref_jobs]
    report["reference"] = [r["simulated_total"] for r in reference]

    # ---- pass 2: chaos ------------------------------------------------
    with SimulationService(
        workers=workers,
        max_attempts=4,
        backoff_base=0.02,
        seed=seed,
    ) as svc:
        chaos = [_chaos_variant(i, c) for i, c in enumerate(configs)]
        jobs = [svc.submit(c) for c in chaos]
        # duplicate submissions must coalesce onto the in-flight jobs
        dup0 = svc.submit(chaos[0])
        dup2 = svc.submit(chaos[2])
        results = [j.wait(timeout=600) for j in jobs]

        _require(dup0 is jobs[0], report, "duplicate 0 not coalesced")
        _require(dup2 is jobs[2], report, "duplicate 2 not coalesced")

        for i, (job, res, ref) in enumerate(zip(jobs, results, reference)):
            st = job.status()
            events = [e["event"] for e in st["events"]]
            _require(
                st["state"] == "done", report, f"job {i} state {st['state']}"
            )
            _require(
                bit_identity(res) == bit_identity(ref),
                report,
                f"job {i} NOT bit-identical to fault-free run "
                f"({res['simulated_total']} vs {ref['simulated_total']})",
            )
            _require(
                "retrying" in events,
                report,
                f"job {i} crashed but has no retrying event",
            )
            _require(
                "resumed" in events,
                report,
                f"job {i} retried but never resumed from a checkpoint",
            )
            if chaos[i].corrupt_checkpoint_on_crash:
                _require(
                    "degraded" in events,
                    report,
                    f"job {i} corrupted its checkpoint but no degraded event",
                )
                res_ev = [e for e in st["events"] if e["event"] == "resumed"]
                _require(
                    any(e.get("source") == "prev" for e in res_ev),
                    report,
                    f"job {i} did not resume from the .prev generation",
                )

        # duplicate of a *finished* job: served from cache, one simulation
        warm = svc.submit(chaos[0])
        _require(warm.done, report, "cache-warm resubmission not done")
        _require(
            bit_identity(warm.wait(1)) == bit_identity(reference[0]),
            report,
            "cache-warm result differs",
        )

        # corrupt a finished cache entry on disk: next submission must
        # quarantine it, recompute, and land on the same bits
        victim = jobs[2]
        path = svc.cache.path(victim.key)
        with open(path, "r+b") as f:
            f.seek(40)
            f.write(b"\xff\xff\xff")
        healed = svc.submit(configs[2])  # clean config, same key space
        healed_res = healed.wait(timeout=600)
        _require(
            svc.cache.corrupt >= 1, report, "corrupt cache entry not detected"
        )
        _require(
            bit_identity(healed_res) == bit_identity(reference[2]),
            report,
            "recomputed result after cache corruption differs",
        )

        health = svc.health()
        _require(
            health["counts"]["worker_restarts"] >= len(configs),
            report,
            "supervisor restarted fewer workers than crashes injected",
        )
        _require(
            any(e["event"] == "cache_quarantine" for e in health["events"]),
            report,
            "cache quarantine left no service event",
        )
        report["health"] = health
        report["results"] = [r["simulated_total"] for r in results]
        report["attempts"] = [j.status()["attempts"] for j in jobs]

    report["ok"] = not report["failures"]
    if verbose:  # pragma: no cover - CLI cosmetics
        for i, cfg in enumerate(configs):
            print(
                f"  job {i}: {cfg.scenario:9s} steps={cfg.steps} "
                f"attempts={report['attempts'][i]} "
                f"simulated_total={report['results'][i]:.6f}"
            )
    if not report["ok"]:
        raise ChaosFailure("; ".join(report["failures"]))
    return report
