"""Service failure modes, against real worker subprocesses.

Each test stands up a small :class:`SimulationService` and drives one
failure scenario end to end: worker killed mid-job and the retry
resuming from its checkpoint, retry budget exhaustion, queue
saturation with load shedding, duplicate coalescing, typed in-worker
failures, hang detection, and cache corruption healing.
"""

import time

import pytest

from repro.serve import (
    JobConfig,
    JobFailed,
    QueueSaturated,
    RetryBudgetExhausted,
    SimulationService,
)
from repro.serve.jobs import bit_identity, run_job

CFG = dict(scenario="adapt", n_nodes=240, n_procs=4, checkpoint_every=2)


def events_of(job):
    return [e["event"] for e in job.status()["events"]]


def wait_until(pred, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(interval)
    return False


def test_kill_mid_job_retries_and_resumes():
    cfg = JobConfig(steps=6, seed=7, crash_at_step=3, **CFG)
    ref = run_job(JobConfig(steps=6, seed=7, **CFG))
    with SimulationService(workers=1, backoff_base=0.01, seed=0) as svc:
        job = svc.submit(cfg)
        result = job.wait(timeout=120)
    assert bit_identity(result) == bit_identity(ref)
    assert result["resumed"] and result["start_step"] == 4
    st = job.status()
    assert st["attempts"] == 2
    ev = events_of(job)
    assert ev.index("queued") < ev.index("running")
    assert "retrying" in ev and "resumed" in ev
    assert ev[-1] == "done"
    retry = next(e for e in st["events"] if e["event"] == "retrying")
    assert retry["reason"] == "worker_died"
    assert retry["resume_available"]
    assert retry["delay"] > 0


def test_retry_budget_exhaustion_is_a_typed_failure():
    cfg = JobConfig(steps=4, seed=8, crash_at_step=0, crash_attempts=99, **CFG)
    with SimulationService(
        workers=1, max_attempts=2, backoff_base=0.01, seed=0
    ) as svc:
        job = svc.submit(cfg)
        with pytest.raises(JobFailed) as exc_info:
            job.wait(timeout=120)
        health = svc.health()
    cause = exc_info.value.cause
    assert isinstance(cause, RetryBudgetExhausted)
    assert cause.attempts == 2
    assert "worker_died" in cause.reasons
    st = job.status()
    assert st["state"] == "failed"
    failed = next(e for e in st["events"] if e["event"] == "failed")
    assert failed["reason"] == "retry_budget_exhausted"
    assert health["counts"]["failed"] == 1
    assert health["counts"]["worker_restarts"] == 2


def test_queue_saturation_sheds_load_with_retry_after():
    slow = dict(CFG, steps=4, step_delay_s=0.4)
    with SimulationService(workers=1, queue_limit=1, seed=0) as svc:
        running = svc.submit(JobConfig(seed=20, **slow))
        # wait until the slow job occupies the worker, then fill the queue
        assert wait_until(lambda: running.status()["state"] == "running")
        queued = svc.submit(JobConfig(seed=21, **slow))
        with pytest.raises(QueueSaturated) as exc_info:
            svc.submit(JobConfig(seed=22, **slow))
        assert exc_info.value.retry_after > 0
        assert svc.health()["counts"]["shed"] == 1
        running.wait(timeout=120)
        queued.wait(timeout=120)
        # the shed config is admitted once the queue drains
        retry = svc.submit(JobConfig(seed=22, **slow))
        retry.wait(timeout=120)


def test_duplicates_coalesce_onto_one_simulation():
    cfg = JobConfig(steps=5, seed=9, **CFG)
    with SimulationService(workers=2, seed=0) as svc:
        a = svc.submit(cfg)
        b = svc.submit(cfg)
        c = svc.submit(cfg)
        assert b is a and c is a
        result = a.wait(timeout=120)
        health = svc.health()
        # the same config again, now finished: served from the cache
        warm = svc.submit(cfg)
        assert warm.done
        assert warm.wait(1) == result
        warm_health = svc.health()
    assert a.status()["duplicates"] == 2
    assert events_of(a).count("coalesced") == 2
    assert health["counts"]["completed"] == 1  # one simulation, three callers
    assert warm_health["counts"]["cache_hits"] == 1


def test_typed_worker_error_fails_without_retry():
    cfg = JobConfig(steps=2, seed=10, partitioner="BOGUS", **CFG)
    with SimulationService(workers=1, backoff_base=0.01, seed=0) as svc:
        job = svc.submit(cfg)
        with pytest.raises(JobFailed, match="BOGUS"):
            job.wait(timeout=120)
        health = svc.health()
    st = job.status()
    assert st["attempts"] == 1  # deterministic failure: retrying is waste
    failed = next(e for e in st["events"] if e["event"] == "failed")
    assert failed["reason"] == "typed_error"
    assert health["counts"]["worker_restarts"] == 0  # worker survived


def test_hung_worker_is_killed_via_heartbeat_timeout():
    # per-step sleep far beyond the heartbeat window; one attempt only
    cfg = JobConfig(steps=4, seed=11, step_delay_s=5.0, **CFG)
    with SimulationService(
        workers=1, max_attempts=1, heartbeat_timeout=0.6, seed=0
    ) as svc:
        job = svc.submit(cfg)
        with pytest.raises(JobFailed):
            job.wait(timeout=120)
        health = svc.health()
    assert isinstance(job.error, RetryBudgetExhausted)
    assert "heartbeat_timeout" in job.error.reasons
    restarts = [
        e for e in health["events"] if e["event"] == "worker_restart"
    ]
    assert any(e["reason"] == "heartbeat_timeout" for e in restarts)


def test_corrupt_cache_entry_is_quarantined_and_recomputed():
    cfg = JobConfig(steps=4, seed=12, **CFG)
    with SimulationService(workers=1, seed=0) as svc:
        first = svc.submit(cfg).wait(timeout=120)
        path = svc.cache.path(svc.jobs["job-0001"].key)
        with open(path, "r+b") as f:
            f.seek(30)
            f.write(b"\xff\xff\xff\xff")
        again = svc.submit(cfg)
        assert not again.done  # damage detected: recompute, not serve
        second = again.wait(timeout=120)
        health = svc.health()
    assert bit_identity(second) == bit_identity(first)
    assert health["cache"]["corrupt"] == 1
    assert any(
        e["event"] == "cache_quarantine" for e in health["events"]
    )


def test_submit_after_shutdown_raises():
    svc = SimulationService(workers=1, seed=0)
    svc.shutdown()
    from repro.serve import ServeError

    with pytest.raises(ServeError, match="shut down"):
        svc.submit(JobConfig(steps=2, seed=1, **CFG))
    svc.shutdown()  # idempotent
