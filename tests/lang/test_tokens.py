"""Tokenizer tests."""

import pytest

from repro.lang import TokenKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src) if t.kind != TokenKind.EOF]


def texts(src):
    return [t.text for t in tokenize(src)][:-1]


class TestBasics:
    def test_identifiers_uppercased(self):
        toks = tokenize("distribute reg(block)")
        assert toks[0].text == "DISTRIBUTE"
        assert toks[1].text == "REG"

    def test_numbers(self):
        toks = tokenize("x = 3.5")
        assert toks[2].kind == TokenKind.NUMBER
        assert toks[2].text == "3.5"

    def test_fortran_double_exponent(self):
        toks = tokenize("1.5d0")
        assert toks[0].kind == TokenKind.NUMBER

    def test_real8_is_one_token(self):
        toks = tokenize("REAL*8 x(n)")
        assert toks[0].text == "REAL*8"

    def test_power_operator(self):
        assert "**" in texts("x ** 2")

    def test_newline_separates_statements(self):
        toks = tokenize("a = 1\nb = 2")
        newlines = [t for t in toks if t.kind == TokenKind.NEWLINE]
        assert len(newlines) == 2

    def test_line_numbers(self):
        toks = tokenize("a = 1\n\nb = 2")
        b = [t for t in toks if t.text == "B"][0]
        assert b.line == 3


class TestCommentsAndDirectives:
    def test_bang_comment_skipped(self):
        assert kinds("! a comment line\nx = 1") == kinds("x = 1")

    def test_fixed_form_c_comment_skipped(self):
        assert kinds("C this is a comment\nx = 1") == kinds("x = 1")

    def test_directive_prefix_stripped(self):
        toks = tokenize("C$ CONSTRUCT G (n)")
        assert toks[0].text == "CONSTRUCT"

    def test_bang_dollar_directive(self):
        toks = tokenize("!$ REDISTRIBUTE reg(fmt)")
        assert toks[0].text == "REDISTRIBUTE"

    def test_blank_lines_skipped(self):
        assert kinds("\n\n  \nx = 1\n\n") == kinds("x = 1")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(ValueError, match="unrecognized character"):
            tokenize("x = @")
