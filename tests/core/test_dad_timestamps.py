"""Tests for DADs and the nmod/last_mod registry."""

import numpy as np
import pytest

from repro.core import DAD, ModificationRegistry
from repro.distribution import (
    BlockDistribution,
    DistArray,
    IrregularDistribution,
)
from repro.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


class TestDAD:
    def test_same_distribution_same_dad(self, m4):
        d = BlockDistribution(10, 4)
        a = DistArray(m4, d, name="a")
        b = DistArray(m4, d, name="b")
        assert DAD.of(a) == DAD.of(b)
        assert hash(DAD.of(a)) == hash(DAD.of(b))

    def test_kind_and_size_exposed(self, m4):
        arr = DistArray(m4, BlockDistribution(10, 4))
        dad = DAD.of(arr)
        assert dad.kind == "block" and dad.size == 10

    def test_remap_changes_dad(self, m4):
        arr = DistArray(m4, BlockDistribution(8, 4))
        before = DAD.of(arr)
        new = IrregularDistribution([3, 2, 1, 0, 3, 2, 1, 0], 4)
        arr.rebind(new, [np.zeros(new.local_size(p)) for p in range(4)])
        assert DAD.of(arr) != before

    def test_equal_irregular_maps_share_dad(self, m4):
        a = DistArray(m4, IrregularDistribution([0, 1, 2, 3], 4))
        b = DistArray(m4, IrregularDistribution([0, 1, 2, 3], 4))
        assert DAD.of(a) == DAD.of(b)


class TestRegistry:
    def test_initially_zero(self):
        reg = ModificationRegistry()
        assert reg.nmod == 0

    def test_block_write_increments_once(self, m4):
        reg = ModificationRegistry()
        a = DistArray(m4, BlockDistribution(10, 4), name="a")
        b = DistArray(m4, BlockDistribution(12, 4), name="b")
        reg.record_block_write([DAD.of(a), DAD.of(b)])
        assert reg.nmod == 1  # one block, one increment
        assert reg.last_mod(DAD.of(a)) == 1
        assert reg.last_mod(DAD.of(b)) == 1

    def test_never_written_dad_is_zero(self, m4):
        reg = ModificationRegistry()
        arr = DistArray(m4, BlockDistribution(10, 4))
        assert reg.last_mod(DAD.of(arr)) == 0

    def test_shared_dad_arrays_stamp_together(self, m4):
        """Writing any array with a given DAD stamps that DAD -- the
        source of the check's conservatism."""
        reg = ModificationRegistry()
        d = BlockDistribution(10, 4)
        a = DistArray(m4, d, name="a")
        b = DistArray(m4, d, name="b")
        reg.record_block_write([DAD.of(a)])
        assert reg.last_mod(DAD.of(b)) == 1  # b shares a's descriptor

    def test_remap_bumps_nmod_and_stamps_new_dad(self, m4):
        reg = ModificationRegistry()
        arr = DistArray(m4, BlockDistribution(8, 4))
        reg.record_block_write([DAD.of(arr)])
        new = IrregularDistribution([0, 1, 2, 3] * 2, 4)
        arr.rebind(new, [np.zeros(new.local_size(p)) for p in range(4)])
        reg.record_remap(DAD.of(arr))
        assert reg.nmod == 2
        assert reg.last_mod(DAD.of(arr)) == 2

    def test_monotone_nmod(self, m4):
        reg = ModificationRegistry()
        arr = DistArray(m4, BlockDistribution(4, 4))
        stamps = [reg.record_block_write([DAD.of(arr)]) for _ in range(5)]
        assert stamps == [1, 2, 3, 4, 5]
