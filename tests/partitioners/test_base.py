"""Tests for the partitioner interface, problem validation, and registry."""

import numpy as np
import pytest

from repro.partitioners import (
    PartitionProblem,
    PartitionResult,
    Partitioner,
    available_partitioners,
    get_partitioner,
    register_partitioner,
)
from repro.partitioners.base import _REGISTRY


class TestPartitionProblem:
    def test_minimal(self):
        p = PartitionProblem(10)
        assert p.n_edges == 0
        assert p.effective_weights().tolist() == [1.0] * 10

    def test_edges_shape_checked(self):
        with pytest.raises(ValueError, match=r"\(2, E\)"):
            PartitionProblem(4, edges=np.zeros((3, 2), dtype=np.int64))

    def test_edge_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            PartitionProblem(4, edges=np.array([[0], [4]]))

    def test_coords_shape_checked(self):
        with pytest.raises(ValueError, match=r"\(ndim, N\)"):
            PartitionProblem(4, coords=np.zeros(4))

    def test_coords_count_checked(self):
        with pytest.raises(ValueError, match="cover 3 vertices"):
            PartitionProblem(4, coords=np.zeros((2, 3)))

    def test_weights_shape_checked(self):
        with pytest.raises(ValueError, match="weights"):
            PartitionProblem(4, weights=np.ones(3))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PartitionProblem(2, weights=np.array([1.0, -1.0]))

    def test_explicit_weights_returned(self):
        p = PartitionProblem(3, weights=np.array([1.0, 2.0, 3.0]))
        assert p.effective_weights().tolist() == [1.0, 2.0, 3.0]


class TestPartitionResult:
    def test_owner_range_checked(self):
        with pytest.raises(ValueError, match=r"\[0, 2\)"):
            PartitionResult(owner_map=np.array([0, 2]), n_parts=2)

    def test_owner_must_be_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            PartitionResult(owner_map=np.zeros((2, 2), dtype=int), n_parts=2)


class TestRegistry:
    def test_builtins_present(self):
        names = available_partitioners()
        for expected in ["BLOCK", "CYCLIC", "RANDOM", "LOAD", "RCB", "RIB", "RSB", "RSB+KL"]:
            assert expected in names

    def test_case_insensitive_lookup(self):
        assert get_partitioner("rcb").name == "RCB"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            get_partitioner("METIS")

    def test_custom_registration_and_duplicate_rejection(self):
        @register_partitioner("TEST-CUSTOM")
        class Custom(Partitioner):
            def partition(self, problem, n_parts):
                self.validate(problem, n_parts)
                return PartitionResult(
                    owner_map=np.zeros(problem.n_vertices, dtype=np.int64),
                    n_parts=n_parts,
                )

        try:
            p = get_partitioner("test-custom")
            res = p.partition(PartitionProblem(5), 2)
            assert res.owner_map.tolist() == [0] * 5
            with pytest.raises(ValueError, match="already registered"):
                register_partitioner("TEST-CUSTOM")(Custom)
        finally:
            _REGISTRY.pop("TEST-CUSTOM", None)

    def test_needs_edges_enforced(self):
        with pytest.raises(ValueError, match="LINK"):
            get_partitioner("RSB").partition(PartitionProblem(5), 2)

    def test_needs_coords_enforced(self):
        with pytest.raises(ValueError, match="GEOMETRY"):
            get_partitioner("RCB").partition(PartitionProblem(5), 2)

    def test_n_parts_positive(self):
        with pytest.raises(ValueError, match="at least one part"):
            get_partitioner("BLOCK").partition(PartitionProblem(5), 0)
