"""Pins the paper-side facts the reproduction's shape checks rely on."""

import pytest

from repro.bench.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    paper_block_vs_rcb_executor,
    paper_compiler_overhead,
    paper_rsb_over_rcb_partition,
    paper_table1_speedups,
    shape_report,
)


class TestPaperFacts:
    def test_table1_complete(self):
        assert len(PAPER_TABLE1) == 9
        assert all(nr > r for nr, r in PAPER_TABLE1.values())

    def test_reuse_speedups_in_published_range(self):
        sp = paper_table1_speedups()
        assert all(13.0 < v < 50.0 for v in sp.values())
        # MD benefits most at equal processor count
        assert sp[("648 atoms", 4)] > sp[("10K mesh", 4)]

    def test_block_pays_2_to_3x_on_meshes(self):
        ratios = paper_block_vs_rcb_executor()
        for (workload, procs), ratio in ratios.items():
            if "mesh" in workload:
                assert 1.7 < ratio < 3.6, (workload, procs, ratio)

    def test_rsb_partitioner_towers_over_rcb(self):
        assert paper_rsb_over_rcb_partition() > 100

    def test_compiler_within_10_percent(self):
        assert paper_compiler_overhead() < 1.10

    def test_rsb_executor_best_in_table2(self):
        ex = {c.variant: c.executor for c in PAPER_TABLE2}
        assert ex["RSB hand"] < ex["RCB hand"] < ex["BLOCK hand"]

    def test_tables_3_4_same_configs(self):
        assert set(PAPER_TABLE3) == set(PAPER_TABLE4)

    def test_per_phase_sums_close_to_totals(self):
        # rel=0.10: the scanned Table 3 loses a digit in the 10K/8 row
        # (phases sum to 9.8 against a printed total of 10.8)
        for key, (part, insp, remap, execu, total) in PAPER_TABLE3.items():
            assert part + insp + remap + execu == pytest.approx(total, rel=0.10), key
        for key, (insp, remap, execu, total) in PAPER_TABLE4.items():
            assert insp + remap + execu == pytest.approx(total, rel=0.12), key

    def test_executor_falls_with_processors(self):
        for table, ex_idx in ((PAPER_TABLE3, 3), (PAPER_TABLE4, 2)):
            for workload in ("10K mesh", "53K mesh", "648 atoms"):
                execs = [
                    v[ex_idx]
                    for (w, p), v in sorted(table.items(), key=lambda kv: kv[0][1])
                    if w == workload
                ]
                assert execs == sorted(execs, reverse=True), (workload, execs)


class TestShapeReport:
    def test_report_pairs_configs(self):
        measured = {(w, p): 5.0 for (w, p) in PAPER_TABLE1}
        rows = shape_report(measured)
        assert len(rows) == 9
        assert all(r["same_direction"] for r in rows)

    def test_mismatched_count_rejected(self):
        with pytest.raises(ValueError, match="expected 9"):
            shape_report({("x", 4): 2.0})
