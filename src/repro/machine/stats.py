"""Per-processor and machine-wide counters.

Every runtime operation charges a processor's clock and counters.  The
benchmark harness reads phase records (named, nestable timing regions) to
produce the paper's table rows; the raw counters (messages, bytes, flops)
back the ablation benches and give tests something exact to assert on.

Counters are stored as a struct-of-arrays :class:`CounterBlock` (one
ndarray per counter across all processors) so the machine's hot paths --
``exchange``, ``charge_compute_all``, the collectives -- update them with
single vectorized operations instead of a Python fold over per-processor
objects.  :class:`ProcessorStats` remains the scalar snapshot type, and
:class:`ProcessorStatsView` keeps the historical ``machine.procs[p].stats``
attribute API working as a live view into the block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: counter names, in the order ProcessorStats declares them
COUNTER_FIELDS = (
    "clock",
    "messages_sent",
    "messages_received",
    "bytes_sent",
    "bytes_received",
    "flops",
    "iops",
    "mem_ops",
)

#: counters stored as int64 arrays; the rest are float64
INT_COUNTER_FIELDS = frozenset(
    ("messages_sent", "messages_received", "bytes_sent", "bytes_received")
)


@dataclass
class ProcessorStats:
    """Counters for one virtual processor (a plain scalar snapshot)."""

    clock: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    flops: float = 0.0
    iops: float = 0.0
    mem_ops: float = 0.0

    def snapshot(self) -> "ProcessorStats":
        return ProcessorStats(
            clock=self.clock,
            messages_sent=self.messages_sent,
            messages_received=self.messages_received,
            bytes_sent=self.bytes_sent,
            bytes_received=self.bytes_received,
            flops=self.flops,
            iops=self.iops,
            mem_ops=self.mem_ops,
        )

    def delta(self, earlier: "ProcessorStats") -> "ProcessorStats":
        """Counter difference ``self - earlier`` (for phase accounting)."""
        return ProcessorStats(
            clock=self.clock - earlier.clock,
            messages_sent=self.messages_sent - earlier.messages_sent,
            messages_received=self.messages_received - earlier.messages_received,
            bytes_sent=self.bytes_sent - earlier.bytes_sent,
            bytes_received=self.bytes_received - earlier.bytes_received,
            flops=self.flops - earlier.flops,
            iops=self.iops - earlier.iops,
            mem_ops=self.mem_ops - earlier.mem_ops,
        )


class CounterBlock:
    """Struct-of-arrays counters for all processors of one machine.

    One ndarray per counter; ``block.clock[p]`` is processor ``p``'s
    clock.  Hot paths add whole vectors (``block.clock += dt``); the
    object-per-processor API survives through :class:`ProcessorStatsView`.
    """

    __slots__ = ("n_procs",) + COUNTER_FIELDS

    def __init__(self, n_procs: int):
        self.n_procs = int(n_procs)
        for name in COUNTER_FIELDS:
            dtype = np.int64 if name in INT_COUNTER_FIELDS else np.float64
            setattr(self, name, np.zeros(self.n_procs, dtype=dtype))

    def copy(self) -> "CounterBlock":
        out = CounterBlock.__new__(CounterBlock)
        out.n_procs = self.n_procs
        for name in COUNTER_FIELDS:
            setattr(out, name, getattr(self, name).copy())
        return out

    def delta(self, earlier: "CounterBlock") -> "CounterBlock":
        """Per-counter difference ``self - earlier`` as a new block."""
        out = CounterBlock.__new__(CounterBlock)
        out.n_procs = self.n_procs
        for name in COUNTER_FIELDS:
            setattr(out, name, getattr(self, name) - getattr(earlier, name))
        return out

    def reset(self) -> None:
        for name in COUNTER_FIELDS:
            getattr(self, name)[:] = 0

    def snapshot(self, p: int) -> ProcessorStats:
        """Materialize processor ``p``'s counters as a ProcessorStats."""
        return ProcessorStats(
            clock=float(self.clock[p]),
            messages_sent=int(self.messages_sent[p]),
            messages_received=int(self.messages_received[p]),
            bytes_sent=int(self.bytes_sent[p]),
            bytes_received=int(self.bytes_received[p]),
            flops=float(self.flops[p]),
            iops=float(self.iops[p]),
            mem_ops=float(self.mem_ops[p]),
        )

    def snapshots(self) -> list[ProcessorStats]:
        return [self.snapshot(p) for p in range(self.n_procs)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CounterBlock(n_procs={self.n_procs}, clock={self.clock!r})"


def _view_field(name: str):
    cast = int if name in INT_COUNTER_FIELDS else float

    def fget(self):
        return cast(getattr(self._block, name)[self._rank])

    def fset(self, value):
        getattr(self._block, name)[self._rank] = value

    return property(fget, fset, doc=f"Live {name} counter in the machine's CounterBlock.")


class ProcessorStatsView:
    """Live per-processor window into a :class:`CounterBlock`.

    Reads and writes go straight to the block's arrays, so code written
    against the old object store (``machine.procs[p].stats.clock += dt``)
    keeps working unchanged.
    """

    __slots__ = ("_block", "_rank")

    def __init__(self, block: CounterBlock, rank: int):
        self._block = block
        self._rank = rank

    def snapshot(self) -> ProcessorStats:
        return self._block.snapshot(self._rank)

    def delta(self, earlier: ProcessorStats) -> ProcessorStats:
        return self.snapshot().delta(earlier)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessorStatsView(rank={self._rank}, {self.snapshot()!r})"


for _name in COUNTER_FIELDS:
    setattr(ProcessorStatsView, _name, _view_field(_name))
del _name


class PhaseRecord:
    """One named timing region, as the harness reports it.

    ``elapsed`` is wall time on the simulated machine: the maximum clock
    advance over all processors between phase start and end (the loosely
    synchronous convention -- everyone waits for the slowest).

    Constructed either from an explicit ``per_proc`` list (tests, legacy
    callers) or from an ``arrays`` CounterBlock of per-phase deltas; with
    arrays, the ProcessorStats list materializes lazily on first access
    and the aggregates are vectorized sums.
    """

    __slots__ = ("name", "elapsed", "_per_proc", "arrays")

    def __init__(
        self,
        name: str,
        elapsed: float,
        per_proc: list[ProcessorStats] | None = None,
        *,
        arrays: CounterBlock | None = None,
    ):
        if (per_proc is None) == (arrays is None):
            raise ValueError("pass exactly one of per_proc or arrays")
        self.name = name
        self.elapsed = elapsed
        self._per_proc = per_proc
        self.arrays = arrays

    @property
    def per_proc(self) -> list[ProcessorStats]:
        if self._per_proc is None:
            self._per_proc = self.arrays.snapshots()
        return self._per_proc

    @property
    def total_messages(self) -> int:
        if self.arrays is not None:
            return int(self.arrays.messages_sent.sum())
        return sum(s.messages_sent for s in self.per_proc)

    @property
    def total_bytes(self) -> int:
        if self.arrays is not None:
            return int(self.arrays.bytes_sent.sum())
        return sum(s.bytes_sent for s in self.per_proc)

    @property
    def total_flops(self) -> float:
        if self.arrays is not None:
            return float(self.arrays.flops.sum())
        return sum(s.flops for s in self.per_proc)

    @property
    def max_clock(self) -> float:
        if self.arrays is not None:
            return float(self.arrays.clock.max()) if self.arrays.n_procs else 0.0
        return max((s.clock for s in self.per_proc), default=0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhaseRecord(name={self.name!r}, elapsed={self.elapsed!r})"


@dataclass
class MachineStats:
    """Machine-wide aggregation over all processors and phases.

    When bound to a machine's :class:`CounterBlock` (the ``counters``
    field), ``stats[p]`` lazily materializes processor ``p``'s current
    counters as a :class:`ProcessorStats` snapshot.
    """

    phases: list[PhaseRecord] = field(default_factory=list)
    counters: CounterBlock | None = field(default=None, repr=False, compare=False)

    def __getitem__(self, p: int) -> ProcessorStats:
        if self.counters is None:
            raise TypeError("MachineStats is not bound to a machine's counters")
        return self.counters.snapshot(p)

    def add(self, record: PhaseRecord) -> None:
        self.phases.append(record)

    def phase_time(self, name: str) -> float:
        """Total elapsed simulated time across all phases named ``name``."""
        return sum(p.elapsed for p in self.phases if p.name == name)

    def phase_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for p in self.phases:
            seen.setdefault(p.name, None)
        return list(seen)

    def total_time(self) -> float:
        return sum(p.elapsed for p in self.phases)

    def clear(self) -> None:
        self.phases.clear()
