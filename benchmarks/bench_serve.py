"""Service-layer throughput and fault-tolerance overhead.

Measures what the `repro.serve` layer adds on top of raw simulation:

* **cold**: submit -> done wall time of one simulation per scenario
  through the full service path (queue, worker subprocess, result
  cache write);
* **warm**: the same config resubmitted -- a content-addressed cache
  hit, no simulation;
* **coalesced**: N concurrent duplicate submissions -- one simulation
  shared by all callers;
* **crash overhead**: the same job killed mid-run and resumed from its
  checkpoint vs. undisturbed, as a wall-time ratio (the price of one
  crash, dominated by worker restart + checkpoint restore).

Simulated numbers are asserted bit-identical between the disturbed and
undisturbed runs -- this bench doubles as a soak of the resume path at
a scale the unit tests do not reach.  Writes
``benchmarks/out/BENCH_serve.json``.

Run standalone (``python benchmarks/bench_serve.py [--tiny]``) or under
pytest (``pytest -s benchmarks/bench_serve.py``).
"""

import argparse
import json
import os
import sys
import time

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
JSON_PATH = os.path.join(OUT_DIR, "BENCH_serve.json")

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.serve import JobConfig, SimulationService  # noqa: E402
from repro.serve.jobs import bit_identity  # noqa: E402

SCENARIOS = ("sweep", "adapt", "rebalance")


def _configs(n_nodes: int, steps: int) -> dict:
    return {
        s: JobConfig(
            scenario=s,
            n_nodes=n_nodes,
            n_procs=8,
            steps=steps,
            checkpoint_every=2,
            adapt_every=2,
            seed=42,
        )
        for s in SCENARIOS
    }


def run_bench(n_nodes: int = 2000, steps: int = 8, workers: int = 2) -> dict:
    rows = {}
    with SimulationService(workers=workers, backoff_base=0.01, seed=0) as svc:
        for scenario, cfg in _configs(n_nodes, steps).items():
            t0 = time.perf_counter()
            cold_result = svc.submit(cfg).wait(timeout=1200)
            cold = time.perf_counter() - t0

            t0 = time.perf_counter()
            warm_job = svc.submit(cfg)
            warm_result = warm_job.wait(timeout=60)
            warm = time.perf_counter() - t0
            assert warm_job.done and bit_identity(warm_result) == bit_identity(
                cold_result
            )

            rows[scenario] = {
                "cold_seconds": round(cold, 4),
                "warm_seconds": round(warm, 4),
                "warm_speedup": round(cold / max(warm, 1e-9), 1),
                "simulated_total": cold_result["simulated_total"],
            }

        # coalescing: duplicates of one in-flight job cost no extra work
        dup_cfg = _configs(n_nodes, steps)["adapt"]
        dup_cfg = JobConfig(**{**dup_cfg.simulated_fields(), "seed": 43})
        t0 = time.perf_counter()
        jobs = [svc.submit(dup_cfg) for _ in range(6)]
        jobs[0].wait(timeout=1200)
        coalesce_seconds = time.perf_counter() - t0
        assert all(j is jobs[0] for j in jobs[1:])
        completed_before = svc.health()["counts"]["completed"]

    # crash + resume overhead, on a fresh service/cache
    base_cfg = JobConfig(
        scenario="adapt", n_nodes=n_nodes, n_procs=8, steps=steps,
        checkpoint_every=2, seed=7,
    )
    crash_cfg = JobConfig(
        **{**base_cfg.simulated_fields()},
        crash_at_step=max(1, steps // 2),
    )
    with SimulationService(workers=1, backoff_base=0.01, seed=0) as svc:
        t0 = time.perf_counter()
        clean = svc.submit(base_cfg).wait(timeout=1200)
        undisturbed = time.perf_counter() - t0
    with SimulationService(workers=1, backoff_base=0.01, seed=0) as svc:
        t0 = time.perf_counter()
        crashed = svc.submit(crash_cfg).wait(timeout=1200)
        disturbed = time.perf_counter() - t0
    assert crashed["resumed"], "crash job never resumed"
    assert bit_identity(crashed) == bit_identity(clean), (
        "crash+resume changed simulated results"
    )

    return {
        "bench": "serve",
        "n_nodes": n_nodes,
        "steps": steps,
        "workers": workers,
        "scenarios": rows,
        "coalescing": {
            "duplicates": 6,
            "wall_seconds": round(coalesce_seconds, 4),
            "simulations_run": completed_before
            - len(SCENARIOS) * 2,  # cold+warm per scenario already counted
        },
        "crash_resume": {
            "undisturbed_seconds": round(undisturbed, 4),
            "crashed_seconds": round(disturbed, 4),
            "overhead_ratio": round(disturbed / max(undisturbed, 1e-9), 2),
            "bit_identical": True,
        },
    }


def render(report: dict) -> str:
    lines = [
        f"serve bench (n_nodes={report['n_nodes']}, steps={report['steps']}, "
        f"workers={report['workers']})",
        f"{'scenario':<12}{'cold s':>10}{'warm s':>10}{'speedup':>10}",
    ]
    for s, r in report["scenarios"].items():
        lines.append(
            f"{s:<12}{r['cold_seconds']:>10.3f}{r['warm_seconds']:>10.4f}"
            f"{r['warm_speedup']:>9.0f}x"
        )
    cr = report["crash_resume"]
    lines.append(
        f"crash+resume overhead: {cr['crashed_seconds']:.3f}s vs "
        f"{cr['undisturbed_seconds']:.3f}s undisturbed "
        f"({cr['overhead_ratio']:.2f}x), bit-identical"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke scale")
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--steps", type=int, default=8)
    args = parser.parse_args(argv)
    n_nodes = 400 if args.tiny else args.nodes
    steps = 6 if args.tiny else args.steps
    report = run_bench(n_nodes=n_nodes, steps=steps)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(JSON_PATH, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(render(report))
    print(f"[written to {JSON_PATH}]")
    return 0


def test_serve_bench(report):
    rep = run_bench(n_nodes=400, steps=6)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(JSON_PATH, "w") as f:
        json.dump(rep, f, indent=2, sort_keys=True)
    report("BENCH_serve", render(rep))
    # the service layer must actually help: warm hits are far cheaper
    assert all(r["warm_speedup"] > 5 for r in rep["scenarios"].values())


if __name__ == "__main__":
    sys.exit(main())
