"""`max_change_fraction` boundary: exactly-at-threshold still patches.

The routing comparison in :meth:`IncrementalInspector.attempt` is
``n_changed > max_change_fraction * n_tracked`` -- strictly greater.
These tests pin the fraction so the threshold falls on an integer count
of changed edges and probe one-below, exactly-at, and one-above.
"""

import numpy as np
import pytest

from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_edge_loop, setup_euler_program

N_PROCS = 4
THRESHOLD_COUNT = 16  # max_change_fraction is set to THRESHOLD_COUNT/n_edges


def build():
    mesh = generate_mesh(300, seed=4)
    machine = Machine(N_PROCS)
    prog = setup_euler_program(machine, mesh, seed=11, incremental=True)
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    loop = euler_edge_loop(mesh)
    prog.forall(loop, n_times=1)
    # end_pt1 and end_pt2 share a DAD (same kind/size/distribution), so
    # mutating end_pt2 stales both and the diff tracks 2*n_edges values;
    # pin the fraction so the threshold falls exactly on THRESHOLD_COUNT
    prog.adapt.max_change_fraction = THRESHOLD_COUNT / (2 * mesh.n_edges)
    return mesh, prog, loop


def mutate_exactly(prog, mesh, n_changed):
    """Re-target exactly ``n_changed`` edges, each to a genuinely
    different (and valid) node index."""
    pick = np.arange(n_changed, dtype=np.int64)
    old = np.asarray(prog.arrays["end_pt2"].global_view(), dtype=np.int64)[pick]
    new = (old + 1) % mesh.n_nodes
    assert (new != old).all()
    prog.set_array_elements("end_pt2", pick, new)


@pytest.mark.parametrize(
    "n_changed, expect_patch",
    [
        (THRESHOLD_COUNT - 1, True),  # under: patch
        (THRESHOLD_COUNT, True),  # exactly at threshold: strict >, patch
        (THRESHOLD_COUNT + 1, False),  # over: full re-inspection
    ],
    ids=["one-under", "exactly-at", "one-over"],
)
def test_threshold_boundary(n_changed, expect_patch):
    mesh, prog, loop = build()
    runs_before, hits_before = prog.inspector_runs, prog.patch_hits
    mutate_exactly(prog, mesh, n_changed)
    prog.forall(loop, n_times=1)
    if expect_patch:
        assert prog.patch_hits == hits_before + 1
        assert prog.inspector_runs == runs_before
        assert not prog.adapt.fallback_log
    else:
        assert prog.patch_hits == hits_before
        assert prog.inspector_runs == runs_before + 1
        (rec,) = prog.adapt.fallback_log
        assert rec["reason"] == "over_threshold"
        assert rec["n_changed"] == n_changed
        assert rec["n_tracked"] == 2 * mesh.n_edges


def test_rewrite_without_change_does_not_count():
    """Only *value* changes count toward the threshold: rewriting the
    whole dirty window with identical values patches trivially."""
    mesh, prog, loop = build()
    vals = np.asarray(prog.arrays["end_pt2"].global_view(), dtype=np.int64)
    prog.set_array_elements(
        "end_pt2", np.arange(mesh.n_edges, dtype=np.int64), vals.copy()
    )
    prog.forall(loop, n_times=1)
    assert prog.patch_hits == 1
    assert not prog.adapt.fallback_log


def test_max_change_fraction_validation():
    from repro.adapt.driver import IncrementalInspector

    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError, match="max_change_fraction"):
            IncrementalInspector(None, max_change_fraction=bad)
    with pytest.raises(ValueError, match="max_failures"):
        IncrementalInspector(None, max_failures=0)
    # 1.0 is inclusive: "never fall back on churn alone"
    assert IncrementalInspector(None, max_change_fraction=1.0)
