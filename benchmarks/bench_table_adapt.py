"""Adaptive-mesh inspector cost: full vs. reuse vs. incremental.

The scenario is the adaptive Euler edge sweep
(``repro.workloads.adaptive``): an RCB-partitioned mesh whose edge list
is locally re-targeted every epoch at a controlled change fraction
(1%, 5%, 25% of edges), with a few executor sweeps between adaptations.
Two runs per configuration, compared on *simulated* inspector cost:

* **reuse** -- the paper's conservative Section 3 check: the inspector
  re-runs **in full at each adaptation** and is reused between them
  (each of those re-inspections is exactly the cost a no-reuse strawman
  would pay every sweep: ``full_inspect_per_adapt`` in the JSON);
* **incremental** -- the ``repro.adapt`` subsystem: at each adaptation
  the saved product is diffed and patched, charged only for the delta
  (``patch_per_adapt``).

The headline number is ``speedup``: simulated cost of one full
re-inspection at an adaptation divided by the cost of one incremental
patch of the same adaptation.  Writes
``benchmarks/out/BENCH_adapt.json``.

Run standalone (``python benchmarks/bench_table_adapt.py [--procs P ...]
[--fractions F ...] [--nodes N]``) or under pytest
(``pytest -s benchmarks/bench_table_adapt.py``).  CI runs a tiny-scale
smoke (``--tiny``) and uploads the JSON.
"""

import argparse
import json
import os
import time

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
MESH_CACHE_DIR = os.path.join(OUT_DIR, "mesh_cache")
JSON_PATH = os.path.join(OUT_DIR, "BENCH_adapt.json")

N_NODES = 50000
PROC_COUNTS = [64, 256]
FRACTIONS = [0.01, 0.05, 0.25]
EPOCHS = 3  # adaptations per run (plus the initial inspection)
SWEEPS_PER_EPOCH = 2

#: smoke scale: small enough for a ~2s CI run, large enough that the
#: patch-vs-full wall gap clears single-run host-clock noise (at 1200
#: nodes the ~6ms walls flip order between runs; at 6000 the patch/full
#: ratio at 1% churn sits stably near 0.5)
TINY_NODES = 6000
TINY_PROCS = [16]

#: invariant-checking level the bench runs under -- recorded in the
#: JSON so wall numbers are only ever compared like-for-like (guard
#: checks are host-level: free in simulated time, not on the wall)
GUARD_LEVEL = "cheap"
#: tag of the patching implementation that produced the numbers; bump
#: when the patch path's wall profile changes so cross-run comparisons
#: of wall fields stay apples-to-apples
IMPLEMENTATION = "inplace-csr-merge+twin-dedup"


def _build_program(mesh, n_procs, incremental):
    from repro.machine import Machine
    from repro.workloads.euler import setup_euler_program

    machine = Machine(n_procs)
    # cheap invariant checking rides along in the bench path: guard
    # checks are host-level, so simulated numbers are unaffected
    prog = setup_euler_program(
        machine, mesh, seed=0, incremental=incremental, guard=GUARD_LEVEL
    )
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    return machine, prog


def _run_mode(mesh, schedule, n_procs, incremental, epochs, sweeps):
    """One adaptive run; returns (machine, program, driver, wall_seconds)."""
    from repro import AdaptiveExecutor
    from repro.workloads.adaptive import apply_adaptation
    from repro.workloads.euler import euler_edge_loop

    t0 = time.perf_counter()
    machine, prog = _build_program(mesh, n_procs, incremental)
    driver = AdaptiveExecutor(prog, euler_edge_loop(mesh))
    driver.run(sweeps)
    for epoch in range(epochs):
        apply_adaptation(prog, schedule.updates[epoch])
        driver.run(sweeps)
    wall = time.perf_counter() - t0
    return machine, prog, driver, wall


def run_adapt_bench(
    proc_counts=PROC_COUNTS,
    fractions=FRACTIONS,
    n_nodes=N_NODES,
    epochs=EPOCHS,
    sweeps=SWEEPS_PER_EPOCH,
):
    from repro.workloads.adaptive import build_refinement_schedule
    from repro.workloads.mesh import generate_mesh

    mesh = generate_mesh(n_nodes, seed=0, cache_dir=MESH_CACHE_DIR)
    runs = []
    for fraction in fractions:
        schedule = build_refinement_schedule(mesh, fraction, epochs, seed=7)
        n_changed = [u.n_changed for u in schedule.updates]
        for n_procs in proc_counts:
            _, prog_r, drv_r, wall_r = _run_mode(
                mesh, schedule, n_procs, False, epochs, sweeps
            )
            m_i, prog_i, drv_i, wall_i = _run_mode(
                mesh, schedule, n_procs, True, epochs, sweeps
            )
            # adaptation-step costs: skip the initial inspection (step 0)
            full_steps = [r for r in drv_r.history[1:] if r["mode"] == "full"]
            patch_steps = [r for r in drv_i.history if r["mode"] == "patch"]
            if len(full_steps) != epochs or len(patch_steps) != epochs:
                raise RuntimeError(
                    f"unexpected step modes: {len(full_steps)} full "
                    f"re-inspections, {len(patch_steps)} patches (want {epochs})"
                )
            adapt_fulls = [r["inspector_time"] for r in full_steps]
            patches = [r["inspector_time"] for r in patch_steps]
            full_per_adapt = sum(adapt_fulls) / len(adapt_fulls)
            patch_per_adapt = sum(patches) / len(patches)
            # host wall per adaptation step: the simulated machine wins
            # above are only honest if patching is also cheaper *for the
            # host running the simulation* -- these two fields gate that
            full_wall = sum(r["inspect_wall_seconds"] for r in full_steps) / epochs
            patch_wall = sum(r["inspect_wall_seconds"] for r in patch_steps) / epochs
            runs.append(
                {
                    "n_procs": n_procs,
                    "fraction": fraction,
                    "n_edges": mesh.n_edges,
                    "n_changed_edges": n_changed,
                    "full_inspect_per_adapt": full_per_adapt,
                    "patch_per_adapt": patch_per_adapt,
                    "speedup": full_per_adapt / patch_per_adapt,
                    "full_wall_per_adapt": round(full_wall, 6),
                    "patch_wall_per_adapt": round(patch_wall, 6),
                    "wall_speedup": round(full_wall / patch_wall, 3),
                    "inspector_total_reuse": drv_r.inspector_time(),
                    "inspector_total_incremental": drv_i.inspector_time(),
                    "patch_hits": prog_i.patch_hits,
                    "full_runs_incremental": prog_i.inspector_runs,
                    "wall_seconds_reuse": round(wall_r, 3),
                    "wall_seconds_incremental": round(wall_i, 3),
                }
            )
            print(
                f"  P={n_procs:>4} frac={fraction:>5.0%}  "
                f"full={full_per_adapt:.4f}s  patch={patch_per_adapt:.4f}s  "
                f"speedup={full_per_adapt / patch_per_adapt:5.1f}x  "
                f"wall {full_wall * 1e3:.1f}ms vs {patch_wall * 1e3:.1f}ms"
            )
    return {
        "scenario": "adaptive_euler_refinement",
        "n_nodes": n_nodes,
        "epochs": epochs,
        "sweeps_per_epoch": sweeps,
        "partitioner": "RCB",
        "guard": GUARD_LEVEL,
        "implementation": IMPLEMENTATION,
        "runs": runs,
    }


def write_report(record, path=JSON_PATH):
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
    return path


def _check_speedups(record, threshold=2.0, max_fraction=0.05):
    """Incremental must beat full re-inspection >= threshold x at small
    change fractions (the subsystem's acceptance bar)."""
    for run in record["runs"]:
        if run["fraction"] <= max_fraction:
            assert run["speedup"] >= threshold, (
                f"P={run['n_procs']} fraction={run['fraction']}: "
                f"incremental speedup {run['speedup']:.2f}x < {threshold}x"
            )


def _check_walls(record):
    """Wall-proportionality gate: patching must be cheaper *on the host
    clock* too, not just for the simulated machine.

    Hard-fails when a patch costs as much host wall as a full
    re-inspection at the smallest churn fraction measured -- the exact
    regression this gate exists for.  When the patch/full wall ratio
    fails to shrink as churn shrinks (it should: patch wall is
    delta-proportional, full-inspect wall is churn-independent), emits a
    GitHub ``::warning::`` annotation rather than failing: single-run
    wall times at small scale are noisy enough for inversions without a
    real regression behind them.
    """
    by_procs: dict[int, list[dict]] = {}
    for run in record["runs"]:
        by_procs.setdefault(run["n_procs"], []).append(run)
    smallest = min(run["fraction"] for run in record["runs"])
    for n_procs, rs in by_procs.items():
        rs.sort(key=lambda r: r["fraction"])
        for run in rs:
            if run["fraction"] == smallest:
                assert run["patch_wall_per_adapt"] < run["full_wall_per_adapt"], (
                    f"P={n_procs} fraction={run['fraction']}: patch wall "
                    f"{run['patch_wall_per_adapt']:.4f}s >= full "
                    f"re-inspection wall {run['full_wall_per_adapt']:.4f}s"
                )
        ratios = [
            r["patch_wall_per_adapt"] / r["full_wall_per_adapt"] for r in rs
        ]
        if any(lo > hi for lo, hi in zip(ratios, ratios[1:])):
            print(
                f"::warning::adapt bench P={n_procs}: patch/full wall "
                f"ratio not monotone in churn: "
                + ", ".join(
                    f"{r['fraction']:.0%}={ratio:.2f}"
                    for r, ratio in zip(rs, ratios)
                )
            )


def test_adapt_bench():
    tiny = os.environ.get("REPRO_ADAPT_TINY", "") not in ("", "0")
    record = run_adapt_bench(
        proc_counts=TINY_PROCS if tiny else PROC_COUNTS,
        n_nodes=TINY_NODES if tiny else N_NODES,
    )
    path = write_report(record)
    print(f"\n[adapt bench written to {path}]")
    _check_speedups(record)
    _check_walls(record)


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Adaptive-mesh incremental-inspection benchmark."
    )
    parser.add_argument("--procs", nargs="*", type=int, default=None)
    parser.add_argument("--fractions", nargs="*", type=float, default=None)
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help=f"CI smoke scale: {TINY_NODES} nodes, P={TINY_PROCS}",
    )
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args()
    record = run_adapt_bench(
        proc_counts=args.procs or (TINY_PROCS if args.tiny else PROC_COUNTS),
        fractions=args.fractions or FRACTIONS,
        n_nodes=args.nodes or (TINY_NODES if args.tiny else N_NODES),
    )
    path = write_report(record)
    print(json.dumps(record, indent=2))
    print(f"[written to {path}]")
    _check_speedups(record)
    _check_walls(record)
