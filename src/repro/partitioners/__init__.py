"""Partitioner library.

"The user will be provided a library of commonly available partitioners
and the user can choose any one of them.  Also, the user can link a
customized partitioner as long as the calling sequence matches."
(Section 4.2.)

The standard calling sequence is :class:`PartitionProblem` (the
standardized representation the compiler builds from a GeoCoL graph) in,
:class:`PartitionResult` out.  Partitioners register themselves by name
in a registry; ``SET distfmt BY PARTITIONING G USING RSB`` resolves
``RSB`` here, and users register custom partitioners the same way.

Included partitioners:

========  ==========================================  ===================
name      method                                      GeoCoL inputs used
========  ==========================================  ===================
BLOCK     contiguous chunks (HPF BLOCK)               none
CYCLIC    round-robin                                 none
RANDOM    uniform random owners (seeded)              none
LOAD      greedy weighted list scheduling             LOAD
RCB       recursive coordinate bisection [Berger87]   GEOMETRY (+LOAD)
RIB       recursive inertial bisection                GEOMETRY (+LOAD)
SFC       Morton space-filling-curve cut              GEOMETRY (+LOAD)
RSB       recursive spectral bisection [Simon91]      LINK (+LOAD)
RSB+KL    RSB followed by Kernighan-Lin refinement    LINK (+LOAD)
========  ==========================================  ===================
"""

from repro.partitioners.base import (
    PartitionProblem,
    PartitionResult,
    Partitioner,
    available_partitioners,
    get_partitioner,
    register_partitioner,
)
from repro.partitioners.naive import BlockPartitioner, CyclicPartitioner, RandomPartitioner
from repro.partitioners.weighted import LoadPartitioner, weighted_median_split
from repro.partitioners.rcb import RCBPartitioner
from repro.partitioners.rib import RIBPartitioner
from repro.partitioners.sfc import SFCPartitioner, morton_keys
from repro.partitioners.rsb import RSBPartitioner, RSBKLPartitioner, fiedler_vector
from repro.partitioners.kl import kl_refine
from repro.partitioners.metrics import edge_cut, comm_volume, load_imbalance, boundary_vertices

__all__ = [
    "PartitionProblem",
    "PartitionResult",
    "Partitioner",
    "available_partitioners",
    "get_partitioner",
    "register_partitioner",
    "BlockPartitioner",
    "CyclicPartitioner",
    "RandomPartitioner",
    "LoadPartitioner",
    "weighted_median_split",
    "RCBPartitioner",
    "RIBPartitioner",
    "SFCPartitioner",
    "morton_keys",
    "RSBPartitioner",
    "RSBKLPartitioner",
    "fiedler_vector",
    "kl_refine",
    "edge_cut",
    "comm_volume",
    "load_imbalance",
    "boundary_vertices",
]
