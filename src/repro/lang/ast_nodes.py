"""AST node definitions for the directive dialect."""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: float


@dataclass(frozen=True)
class Var:
    """A bare identifier: the loop variable, a size symbol or a scalar."""

    name: str


@dataclass(frozen=True)
class ArrayIndex:
    """``name(index)`` where index is an expression (usually Var or
    another single-level ArrayIndex)."""

    name: str
    index: "Expr"


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / **
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnOp:
    op: str  # -
    operand: "Expr"


@dataclass(frozen=True)
class Call:
    func: str
    args: tuple["Expr", ...]


Expr = Num | Var | ArrayIndex | BinOp | UnOp | Call


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
@dataclass
class TypeDecl:
    """``REAL*8 x(nnode), y(nnode)`` / ``INTEGER ia(nedge)``."""

    type_name: str  # "REAL*8", "REAL", "INTEGER"
    arrays: list[tuple[str, Expr]]  # (array name, size expression)
    line: int = 0


@dataclass
class DecompositionDecl:
    """``[DYNAMIC,] DECOMPOSITION reg(nnode), reg2(nedge)``."""

    decomps: list[tuple[str, Expr]]
    dynamic: bool = False
    line: int = 0


@dataclass
class DistributeStmt:
    """``DISTRIBUTE reg(BLOCK), reg2(CYCLIC)``."""

    targets: list[tuple[str, str]]  # (decomposition, format keyword)
    line: int = 0


@dataclass
class AlignStmt:
    """``ALIGN x, y WITH reg``."""

    arrays: list[str]
    decomp: str
    line: int = 0


@dataclass
class ConstructStmt:
    """``CONSTRUCT G (nnode, GEOMETRY(3, xc, yc, zc), LOAD(w),
    LINK(nedge, e1, e2))``."""

    name: str
    n_vertices: Expr
    geometry: list[str] | None = None
    load: str | None = None
    link: tuple[str, str] | None = None
    link_count: Expr | None = None
    line: int = 0


@dataclass
class SetStmt:
    """``SET distfmt BY PARTITIONING G USING RSB``."""

    target: str
    geocol: str
    partitioner: str
    line: int = 0


@dataclass
class RedistributeStmt:
    """``REDISTRIBUTE reg(distfmt)``."""

    decomp: str
    fmt: str
    line: int = 0


@dataclass
class AssignStmt:
    """``y(ia(i)) = <expr>`` inside a FORALL."""

    lhs: ArrayIndex
    expr: Expr
    line: int = 0


@dataclass
class ReduceStmt:
    """``REDUCE (ADD, y(ia(i)), <expr>)`` inside a FORALL."""

    op: str  # ADD | MULTIPLY | MIN | MAX
    lhs: ArrayIndex
    expr: Expr
    line: int = 0


@dataclass
class ForallStmt:
    """``FORALL i = 1, nedge ... END FORALL``."""

    var: str
    lo: Expr
    hi: Expr
    body: list[AssignStmt | ReduceStmt] = field(default_factory=list)
    line: int = 0


@dataclass
class DoStmt:
    """``DO t = 1, 100 ... END DO`` (timing loop around FORALLs)."""

    var: str
    lo: Expr
    hi: Expr
    body: list = field(default_factory=list)
    line: int = 0


Statement = (
    TypeDecl
    | DecompositionDecl
    | DistributeStmt
    | AlignStmt
    | ConstructStmt
    | SetStmt
    | RedistributeStmt
    | ForallStmt
    | DoStmt
)


@dataclass
class ProgramAST:
    statements: list = field(default_factory=list)
