"""Pretty-printer tests including hypothesis round-trip properties."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.lang import parse
from repro.lang.ast_nodes import (
    ArrayIndex,
    AssignStmt,
    BinOp,
    Call,
    ForallStmt,
    Num,
    ReduceStmt,
    UnOp,
    Var,
)
from repro.lang.pretty import pretty_expr, pretty_program, pretty_stmt

FIGURE4 = """
REAL*8 x(nnode), y(nnode)
INTEGER end_pt1(nedge), end_pt2(nedge)
DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
DISTRIBUTE reg(BLOCK), reg2(BLOCK)
ALIGN x, y WITH reg
ALIGN end_pt1, end_pt2 WITH reg2
C$ CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$ SET distfmt BY PARTITIONING G USING RSB
C$ REDISTRIBUTE reg(distfmt)
DO t = 1, 5
  FORALL i = 1, nedge
    REDUCE (ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
    y(end_pt2(i)) = SQRT(ABS(x(end_pt2(i)))) + 2.5
  END FORALL
END DO
"""


def strip_ast(node):
    """Recursively drop line numbers so ASTs compare structurally."""
    import dataclasses

    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        out = {}
        for f in dataclasses.fields(node):
            if f.name == "line":
                continue
            v = getattr(node, f.name)
            out[f.name] = strip_ast(v)
        return (type(node).__name__, tuple(sorted(out.items(), key=lambda kv: kv[0])))
    if isinstance(node, (list, tuple)):
        return tuple(strip_ast(x) for x in node)
    return node


class TestRoundTripFixed:
    def test_figure4_round_trips(self):
        ast1 = parse(FIGURE4)
        source2 = pretty_program(ast1)
        ast2 = parse(source2)
        assert strip_ast(ast1.statements) == strip_ast(ast2.statements)

    def test_pretty_is_parseable_twice(self):
        src = pretty_program(parse(FIGURE4))
        assert pretty_program(parse(src)) == src  # fixpoint after one pass


# ---------------------------------------------------------------------------
# property-based expression round trip
# ---------------------------------------------------------------------------
_names = st.sampled_from(["X", "Y", "W"])
_ind = st.sampled_from(["IA", "IB"])


def exprs(depth=3):
    base = st.one_of(
        st.integers(min_value=0, max_value=99).map(lambda v: Num(float(v))),
        st.builds(lambda a, i: ArrayIndex(a, ArrayIndex(i, Var("I"))), _names, _ind),
        _names.map(lambda a: ArrayIndex(a, Var("I"))),
        st.just(Var("ALPHA")),
    )
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(BinOp, st.sampled_from(["+", "-", "*", "/"]), sub, sub),
        st.builds(lambda e: UnOp("-", e), sub),
        st.builds(lambda f, e: Call(f, (e,)), st.sampled_from(["SQRT", "ABS", "EXP"]), sub),
        st.builds(lambda f, a, b: Call(f, (a, b)), st.sampled_from(["MIN", "MAX"]), sub, sub),
    )


@given(expr=exprs())
@settings(max_examples=150, deadline=None)
def test_expression_round_trip(expr):
    src = f"FORALL I = 1, N\n Y(IA(I)) = {pretty_expr(expr)}\nEND FORALL"
    stmt = parse(src).statements[0].body[0]
    assert strip_ast(stmt.expr) == strip_ast(expr)


@given(
    op=st.sampled_from(["ADD", "MULTIPLY", "MIN", "MAX"]),
    expr=exprs(depth=2),
)
@settings(max_examples=80, deadline=None)
def test_reduce_statement_round_trip(op, expr):
    stmt = ReduceStmt(op=op, lhs=ArrayIndex("Y", ArrayIndex("IA", Var("I"))), expr=expr)
    forall = ForallStmt(var="I", lo=Num(1.0), hi=Var("N"), body=[stmt])
    src = "\n".join(pretty_stmt(forall))
    back = parse(src).statements[0]
    assert strip_ast(back) == strip_ast(forall)


@given(expr=exprs(depth=2), data=st.data())
@settings(max_examples=80, deadline=None)
def test_pretty_preserves_evaluation(expr, data):
    """The printed expression compiles to the same values."""
    from repro.lang.lower import compile_expression

    scalars = {"ALPHA": 2.0}
    f1, refs1, _ = compile_expression(expr, "I", scalars)
    reparsed = parse(
        f"FORALL I = 1, N\n Y(IA(I)) = {pretty_expr(expr)}\nEND FORALL"
    ).statements[0].body[0].expr
    f2, refs2, _ = compile_expression(reparsed, "I", scalars)
    assert refs1 == refs2
    rng = np.random.default_rng(data.draw(st.integers(0, 10**6)))
    # positive operands keep SQRT/LOG well-defined; scalar-only
    # subexpressions can still divide by exactly zero (e.g. ALPHA - 2.0),
    # which Python floats raise on -- skip those draws
    ops = [rng.uniform(0.5, 2.0, size=4) for _ in refs1]
    try:
        with np.errstate(all="ignore"):
            v1, v2 = f1(*ops), f2(*ops)
    except ZeroDivisionError:
        assume(False)
    assert np.allclose(v1, v2, equal_nan=True)
