"""Unit tests for CommSchedule entries/from_entries/patched and
GhostBuffers.patched -- the append/retire primitives patching builds on."""

import numpy as np
import pytest

from repro.chaos.buffers import GhostBuffers
from repro.chaos.localize import localize
from repro.chaos.schedule import CommSchedule
from repro.chaos.ttable import build_translation_table
from repro.distribution import BlockDistribution
from repro.machine import Machine


def make_localized(m, n=32, seed=0, n_refs=60):
    rng = np.random.default_rng(seed)
    dist = BlockDistribution(n, m.n_procs)
    tt = build_translation_table(m, dist)
    refs = [
        rng.integers(0, n, n_refs // m.n_procs) for _ in range(m.n_procs)
    ]
    return localize(m, tt, refs), dist


class TestEntriesRoundTrip:
    def test_from_entries_reconstructs_schedule(self):
        m = Machine(4)
        loc, dist = make_localized(m)
        sched = loc.schedule
        q, p, send, recv = sched.entries()
        # per-element order keys = ghost global indices, aligned with
        # entries -- the wire order a fresh localize produces
        key_of = np.empty(q.size, dtype=np.int64)
        for pp in range(4):
            sel = p == pp
            key_of[sel] = loc.ghost_globals[pp][recv[sel]]
        rebuilt = CommSchedule.from_entries(
            m, sched.dist_signature, q, p, send, recv,
            sched.ghost_sizes, order_key=key_of,
        )
        assert np.array_equal(rebuilt._pair_q, sched._pair_q)
        assert np.array_equal(rebuilt._pair_p, sched._pair_p)
        assert np.array_equal(rebuilt._pair_len, sched._pair_len)
        assert np.array_equal(rebuilt._flat_send, sched._flat_send)
        assert np.array_equal(rebuilt._flat_recv, sched._flat_recv)

    def test_entries_shapes(self):
        m = Machine(4)
        loc, _ = make_localized(m)
        q, p, send, recv = loc.schedule.entries()
        total = int(loc.schedule._pair_len.sum())
        assert q.shape == p.shape == send.shape == recv.shape == (total,)


class TestPatched:
    def test_patched_keep_all_is_identity(self):
        m = Machine(4)
        loc, _ = make_localized(m)
        sched = loc.schedule
        q, p, send, recv = sched.entries()
        key_of = np.empty(q.size, dtype=np.int64)
        for pp in range(4):
            sel = p == pp
            key_of[sel] = loc.ghost_globals[pp][recv[sel]]
        same = sched.patched(
            np.ones(q.size, dtype=bool),
            add_q=np.empty(0, dtype=np.int64),
            add_p=np.empty(0, dtype=np.int64),
            add_send=np.empty(0, dtype=np.int64),
            add_recv=np.empty(0, dtype=np.int64),
            ghost_sizes=sched.ghost_sizes,
            keep_key=key_of,
            add_key=np.empty(0, dtype=np.int64),
        )
        assert np.array_equal(same._flat_send, sched._flat_send)
        assert np.array_equal(same._flat_recv, sched._flat_recv)
        assert same.ghost_sizes == sched.ghost_sizes

    def test_retire_and_append_matches_fresh_construction(self):
        """Dropping some entries and appending others equals building
        from the surviving entry set directly."""
        m = Machine(4)
        loc, _ = make_localized(m, seed=3)
        sched = loc.schedule
        q, p, send, recv = sched.entries()
        rng = np.random.default_rng(1)
        keep = rng.random(q.size) > 0.3
        # appended entries: new ghost slots at the end of each region
        sizes = list(sched.ghost_sizes)
        add_q = np.array([0, 1], dtype=np.int64)
        add_p = np.array([2, 3], dtype=np.int64)
        add_send = np.array([0, 1], dtype=np.int64)
        add_recv = np.array([sizes[2], sizes[3]], dtype=np.int64)
        new_sizes = sizes.copy()
        new_sizes[2] += 1
        new_sizes[3] += 1
        patched = sched.patched(
            keep, add_q, add_p, add_send, add_recv, new_sizes,
            keep_key=send, add_key=add_send,
        )
        direct = CommSchedule.from_entries(
            m,
            sched.dist_signature,
            np.concatenate([q[keep], add_q]),
            np.concatenate([p[keep], add_p]),
            np.concatenate([send[keep], add_send]),
            np.concatenate([recv[keep], add_recv]),
            new_sizes,
            order_key=np.concatenate([send[keep], add_send]),
        )
        assert np.array_equal(patched._pair_q, direct._pair_q)
        assert np.array_equal(patched._pair_p, direct._pair_p)
        assert np.array_equal(patched._flat_send, direct._flat_send)
        assert np.array_equal(patched._flat_recv, direct._flat_recv)

    def test_bad_keep_mask_rejected(self):
        m = Machine(4)
        loc, _ = make_localized(m)
        with pytest.raises(ValueError, match="keep mask"):
            loc.schedule.patched(
                np.ones(3, dtype=bool),
                add_q=np.empty(0, dtype=np.int64),
                add_p=np.empty(0, dtype=np.int64),
                add_send=np.empty(0, dtype=np.int64),
                add_recv=np.empty(0, dtype=np.int64),
                ghost_sizes=loc.schedule.ghost_sizes,
            )


class TestGhostBuffersPatched:
    def test_contents_copied_to_preserved_positions(self):
        m = Machine(4)
        loc, _ = make_localized(m, seed=5)
        sched = loc.schedule
        ghosts = GhostBuffers(m, sched, dtype=np.float64)
        rng = np.random.default_rng(2)
        ghosts.backing[:] = rng.normal(size=ghosts.backing.size)
        # grow two regions via a patched schedule
        q, p, send, recv = sched.entries()
        sizes = list(sched.ghost_sizes)
        new_sizes = [s + (2 if i % 2 else 0) for i, s in enumerate(sizes)]
        grown = sched.patched(
            np.ones(q.size, dtype=bool),
            add_q=np.empty(0, dtype=np.int64),
            add_p=np.empty(0, dtype=np.int64),
            add_send=np.empty(0, dtype=np.int64),
            add_recv=np.empty(0, dtype=np.int64),
            ghost_sizes=new_sizes,
        )
        new = ghosts.patched(grown)
        for pp in range(4):
            old_seg = ghosts.buf(pp)
            assert np.array_equal(new.buf(pp)[: old_seg.size], old_seg)
            assert (new.buf(pp)[old_seg.size :] == 0).all()

    def test_shrink_rejected(self):
        m = Machine(4)
        loc, _ = make_localized(m, seed=6)
        sched = loc.schedule
        ghosts = GhostBuffers(m, sched, dtype=np.float64)
        if not any(sched.ghost_sizes):
            pytest.skip("no ghosts in this draw")
        q, p, send, recv = sched.entries()
        big = np.argmax(sched.ghost_sizes)
        keep = p != big  # drop one processor's entries entirely
        new_sizes = list(sched.ghost_sizes)
        new_sizes[big] -= 1
        shrunk = sched.patched(
            keep,
            add_q=np.empty(0, dtype=np.int64),
            add_p=np.empty(0, dtype=np.int64),
            add_send=np.empty(0, dtype=np.int64),
            add_recv=np.empty(0, dtype=np.int64),
            ghost_sizes=new_sizes,
        )
        with pytest.raises(ValueError, match="append-only"):
            ghosts.patched(shrunk)

    def test_charges_only_appended_slots(self):
        m = Machine(4)
        loc, _ = make_localized(m, seed=7)
        sched = loc.schedule
        ghosts = GhostBuffers(m, sched, dtype=np.float64)
        q, p, send, recv = sched.entries()
        new_sizes = [s + 3 for s in sched.ghost_sizes]
        grown = sched.patched(
            np.ones(q.size, dtype=bool),
            add_q=np.empty(0, dtype=np.int64),
            add_p=np.empty(0, dtype=np.int64),
            add_send=np.empty(0, dtype=np.int64),
            add_recv=np.empty(0, dtype=np.int64),
            ghost_sizes=new_sizes,
        )
        iops_before = m.counters.iops.copy()
        ghosts.patched(grown)
        from repro.chaos.costs import DEFAULT_COSTS

        delta = m.counters.iops - iops_before
        assert np.allclose(delta, DEFAULT_COSTS.buffer_assign * 3)
