"""Schedule application wrappers: gather / scatter / scatter-op.

Thin, name-faithful wrappers over :class:`CommSchedule` methods plus the
registry of reduction operators the paper's FORALL/REDUCE construct
allows ("addition, accumulation, max, min, etc.").
"""

from __future__ import annotations

import numpy as np

from repro.chaos.buffers import GhostBuffers
from repro.chaos.schedule import CommSchedule
from repro.distribution.distarray import DistArray

#: Reduction operators permitted in REDUCE statements, by Fortran-ish name.
REDUCTION_OPS = {
    "add": np.add,
    "multiply": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}


def gather(schedule: CommSchedule, arr: DistArray, ghosts: GhostBuffers) -> None:
    """Prefetch off-processor elements of ``arr`` into ``ghosts``."""
    schedule.gather(arr, ghosts)


def scatter(schedule: CommSchedule, ghosts: GhostBuffers, arr: DistArray) -> None:
    """Copy ghost values back to their owners (overwrite semantics)."""
    schedule.scatter(ghosts, arr)


def scatter_add(schedule: CommSchedule, ghosts: GhostBuffers, arr: DistArray) -> None:
    """Accumulate ghost contributions into their owners (+=)."""
    schedule.scatter_op(ghosts, arr, np.add)


def scatter_op(
    schedule: CommSchedule,
    ghosts: GhostBuffers,
    arr: DistArray,
    op_name: str,
) -> None:
    """Combine ghost contributions with a named reduction operator."""
    try:
        op = REDUCTION_OPS[op_name]
    except KeyError:
        raise ValueError(
            f"unknown reduction op {op_name!r}; choose from {sorted(REDUCTION_OPS)}"
        ) from None
    schedule.scatter_op(ghosts, arr, op)
