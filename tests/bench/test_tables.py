"""Structural tests for the table-assembly functions (tiny scale)."""

import pytest

from repro.bench.tables import (
    fig2_phase_breakdown,
    table1_schedule_reuse,
    table2_mapper_coupler,
    table3_rcb_detail,
    table4_block,
)


@pytest.fixture(scope="module")
def t1():
    return table1_schedule_reuse("tiny")


class TestTable1:
    def test_nine_configs(self, t1):
        rows, text = t1
        assert len(rows) == 9
        assert "Table 1" in text

    def test_columns_present(self, t1):
        rows, _ = t1
        for row in rows:
            assert {"config", "no_reuse", "reuse", "speedup"} <= set(row)

    def test_reuse_wins_everywhere(self, t1):
        rows, _ = t1
        assert all(r["reuse"] < r["no_reuse"] for r in rows)

    def test_config_labels(self, t1):
        rows, _ = t1
        labels = [r["config"] for r in rows]
        assert labels[0].endswith("/4")
        assert any("atoms" in lb for lb in labels)


class TestTable2:
    def test_six_variants(self):
        rows, text = table2_mapper_coupler("tiny", n_procs=8)
        assert len(rows) == 6
        assert {r["column"] for r in rows} == {
            "RCB compiler+reuse",
            "RCB compiler no-reuse",
            "RCB hand",
            "BLOCK hand",
            "RSB hand",
            "RSB compiler+reuse",
        }
        block = next(r for r in rows if r["column"] == "BLOCK hand")
        assert block["partition"] == 0


class TestTables34:
    def test_table3_has_partition_column(self):
        rows, _ = table3_rcb_detail("tiny")
        assert all("partition" in r for r in rows)
        assert all(r["total"] > 0 for r in rows)

    def test_table4_lacks_partition_column(self):
        rows, _ = table4_block("tiny")
        assert all("partition" not in r for r in rows)


class TestFig2:
    def test_four_phases(self):
        rows, text = fig2_phase_breakdown("tiny", n_procs=8)
        assert len(rows) == 4
        assert rows[0]["phase"].startswith("A")
        assert "Figure 2" in text
