"""Deterministic fault injection for the inspector/executor pipeline.

A :class:`FaultPlan` is a seeded script of faults to inject at the
runtime's three natural hook points:

* **gather wire** (``CommSchedule._move_gather``): corrupt one element
  of an exchanged chunk, drop elements (the requester keeps stale ghost
  values), or duplicate one element over another -- the classic
  lost/garbled/replayed-message triad;
* **remap wire** (``RemapSchedule.apply``): the same triad over the
  moved-element data of an array redistribution -- full rebuilds and
  delta-patched schedules (``patch_remap_schedule``) alike;
* **patched product** (``IncrementalInspector`` post-patch): swap two
  recv slots within one schedule pair, breaking the slot map exactly the
  way out-of-sync incremental bookkeeping would;
* **patched remap schedule** (``patch_remap_schedule``): swap two
  destination slots of a delta-derived remap schedule, desynchronizing
  it from the repartition plan the way stale move bookkeeping would;
* **phase boundary** (``Machine.phase``): stall one processor's clock on
  phase entry or exit, modeling a straggler.

Everything is driven by an explicit seed, so a given plan injects the
same faults at the same events on every run -- recovery tests are
reproducible bit for bit.  Faults are *simulation-only*: they perturb
moved data (or, for ``stall``, one clock -- the only fault whose point
is time), never the charged communication volume, so the cost model
stays truthful about what the fault-free run would have charged.

Install with ``plan.install(machine)`` (sets ``machine.faults``); every
injected fault appends a record to ``plan.fired`` so tests can assert
the fault actually happened and was subsequently detected.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np


@contextmanager
def suspended(machine):
    """Temporarily disable fault injection on ``machine``.

    Recovery paths (e.g. the executor's re-gather after a detected
    divergence) run under this so the repair itself is not re-faulted
    and the plan's event counters do not drift.
    """
    saved, machine.faults = machine.faults, None
    try:
        yield
    finally:
        machine.faults = saved


class FaultPlan:
    """A seeded, scripted set of faults to inject into one run.

    Fault registration methods return ``self`` so plans chain::

        plan = FaultPlan(seed=7).corrupt_gather(nth=0).stall("executor", proc=2)
        plan.install(machine)

    ``nth`` counts events of the hook's kind: non-empty gathers for the
    gather-wire faults, non-empty remap applications for the remap-wire
    faults, successful incremental patches for ``flip_slots``,
    delta-patched remap schedules for ``flip_remap``, and matching phase
    enters/exits for ``stall``.  Each registered fault fires exactly
    once.
    """

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)
        self.fired: list[dict] = []
        self._specs: list[dict] = []
        self._gathers = 0
        self._patches = 0
        self._remaps = 0
        self._remap_patches = 0
        self._phases: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def corrupt_gather(self, nth: int = 0) -> "FaultPlan":
        """Corrupt one element of the ``nth`` non-empty gather's wire data."""
        self._specs.append({"kind": "corrupt_gather", "nth": int(nth), "done": False})
        return self

    def drop_gather(self, nth: int = 0, count: int = 1) -> "FaultPlan":
        """Drop ``count`` elements of the ``nth`` non-empty gather: the
        requesters keep whatever stale values their ghost slots held."""
        self._specs.append(
            {"kind": "drop_gather", "nth": int(nth), "count": int(count), "done": False}
        )
        return self

    def duplicate_gather(self, nth: int = 0) -> "FaultPlan":
        """Overwrite one wire element of the ``nth`` non-empty gather with
        a neighboring element (a replayed/misrouted chunk)."""
        self._specs.append({"kind": "duplicate_gather", "nth": int(nth), "done": False})
        return self

    def flip_slots(self, nth: int = 0) -> "FaultPlan":
        """Swap two recv slots within one pair of the ``nth`` patched
        schedule, desynchronizing it from the saved slot bookkeeping."""
        self._specs.append({"kind": "flip_slots", "nth": int(nth), "done": False})
        return self

    def corrupt_remap(self, nth: int = 0) -> "FaultPlan":
        """Corrupt one moved element of the ``nth`` non-empty remap apply."""
        self._specs.append({"kind": "corrupt_remap", "nth": int(nth), "done": False})
        return self

    def drop_remap(self, nth: int = 0, count: int = 1) -> "FaultPlan":
        """Drop ``count`` moved elements of the ``nth`` non-empty remap
        apply: their destination slots keep the allocation's stale fill."""
        self._specs.append(
            {"kind": "drop_remap", "nth": int(nth), "count": int(count), "done": False}
        )
        return self

    def duplicate_remap(self, nth: int = 0) -> "FaultPlan":
        """Overwrite one moved element of the ``nth`` non-empty remap
        apply with a neighboring element (a replayed/misrouted move)."""
        self._specs.append({"kind": "duplicate_remap", "nth": int(nth), "done": False})
        return self

    def flip_remap(self, nth: int = 0) -> "FaultPlan":
        """Swap two destination slots of the ``nth`` delta-patched remap
        schedule, desynchronizing it from its repartition plan."""
        self._specs.append({"kind": "flip_remap", "nth": int(nth), "done": False})
        return self

    def stall(
        self,
        phase: str,
        proc: int = 0,
        seconds: float = 1.0,
        when: str = "enter",
        nth: int = 0,
    ) -> "FaultPlan":
        """Advance ``proc``'s clock by ``seconds`` at the ``nth``
        ``when``-boundary (``"enter"``/``"exit"``) of phases named ``phase``."""
        if when not in ("enter", "exit"):
            raise ValueError(f"when must be 'enter' or 'exit', got {when!r}")
        self._specs.append(
            {
                "kind": "stall",
                "phase": str(phase),
                "proc": int(proc),
                "seconds": float(seconds),
                "when": when,
                "nth": int(nth),
                "done": False,
            }
        )
        return self

    def install(self, machine) -> "FaultPlan":
        """Attach this plan to ``machine`` (its hooks start firing)."""
        machine.faults = self
        return self

    # ------------------------------------------------------------------
    # hooks (called by the runtime; not part of the public API)
    # ------------------------------------------------------------------
    def _perturb_wire(self, wire: np.ndarray, event: int, suffix: str, label: str):
        """Shared corrupt/drop/duplicate logic for one wire movement.

        ``suffix`` selects the spec family (``"gather"``/``"remap"``),
        ``label`` names the event-counter field in ``fired`` records.
        Returns ``(wire, keep_mask)``; ``keep_mask`` is ``None`` unless
        elements were dropped."""
        keep = None
        for spec in self._specs:
            if spec["done"] or spec["nth"] != event:
                continue
            kind = spec["kind"]
            if kind == f"corrupt_{suffix}":
                wire = wire.copy()
                i = int(self.rng.integers(wire.size))
                wire[i] += 1
                spec["done"] = True
                self.fired.append({"kind": kind, label: event, "element": i})
            elif kind == f"drop_{suffix}":
                k = min(spec["count"], wire.size)
                drop = self.rng.choice(wire.size, size=k, replace=False)
                keep = np.ones(wire.size, dtype=bool)
                keep[drop] = False
                spec["done"] = True
                self.fired.append(
                    {"kind": kind, label: event, "elements": sorted(int(d) for d in drop)}
                )
            elif kind == f"duplicate_{suffix}":
                if wire.size < 2:
                    continue
                wire = wire.copy()
                i = int(self.rng.integers(wire.size))
                j = (i + 1) % wire.size
                wire[j] = wire[i]
                spec["done"] = True
                self.fired.append({"kind": kind, label: event, "element": j})
        return wire, keep

    def on_gather_wire(self, wire: np.ndarray):
        """Perturb one gather's wire data.  Returns ``(wire, keep_mask)``;
        ``keep_mask`` is ``None`` unless elements were dropped."""
        if not wire.size:
            return wire, None
        event = self._gathers
        self._gathers += 1
        return self._perturb_wire(wire, event, "gather", "gather")

    def on_remap_wire(self, wire: np.ndarray):
        """Perturb the moved-element data of one remap application.
        Returns ``(wire, keep_mask)`` like :meth:`on_gather_wire`; the
        charged message volume is untouched either way."""
        if not wire.size:
            return wire, None
        event = self._remaps
        self._remaps += 1
        return self._perturb_wire(wire, event, "remap", "remap")

    def on_patched_remap(self, sched) -> bool:
        """Possibly swap two destination slots of a freshly delta-patched
        remap schedule.  Returns True when a fault was injected."""
        event = self._remap_patches
        self._remap_patches += 1
        hit = False
        for spec in self._specs:
            if spec["done"] or spec["kind"] != "flip_remap" or spec["nth"] != event:
                continue
            if sched._dst_pos.size < 2:
                continue
            i = int(self.rng.integers(sched._dst_pos.size - 1))
            dst = sched._dst_pos.copy()
            dst[i], dst[i + 1] = dst[i + 1], dst[i]
            sched._dst_pos = dst
            spec["done"] = True
            hit = True
            self.fired.append(
                {"kind": "flip_remap", "remap_patch": event, "slot": i}
            )
        return hit

    def on_patched_product(self, product) -> bool:
        """Possibly desynchronize one schedule of a freshly patched
        product.  Returns True when a fault was injected."""
        event = self._patches
        self._patches += 1
        hit = False
        for spec in self._specs:
            if spec["done"] or spec["kind"] != "flip_slots" or spec["nth"] != event:
                continue
            for pat in product.patterns.values():
                if self._flip_schedule(pat.localized.schedule):
                    spec["done"] = True
                    hit = True
                    self.fired.append(
                        {"kind": "flip_slots", "patch": event, "array": pat.array}
                    )
                    break
        return hit

    @staticmethod
    def _flip_schedule(sched) -> bool:
        """Swap the first two recv slots of the first multi-element pair."""
        plen = sched._pair_len
        cand = np.flatnonzero(plen >= 2)
        if not cand.size:
            return False
        start = int(np.concatenate(([0], np.cumsum(plen)))[cand[0]])
        recv = sched._flat_recv.copy()
        recv[start], recv[start + 1] = recv[start + 1], recv[start]
        sched._send_dict = None
        sched._recv_dict = None
        sched._init_flat(
            sched._pair_q, sched._pair_p, sched._pair_len, sched._flat_send, recv
        )
        return True

    def on_phase(self, machine, name: str, when: str) -> None:
        """Stall scripted processors at a phase boundary."""
        key = (name, when)
        event = self._phases.get(key, 0)
        self._phases[key] = event + 1
        for spec in self._specs:
            if (
                spec["done"]
                or spec["kind"] != "stall"
                or spec["phase"] != name
                or spec["when"] != when
                or spec["nth"] != event
            ):
                continue
            machine.counters.clock[spec["proc"]] += spec["seconds"]
            spec["done"] = True
            self.fired.append(
                {
                    "kind": "stall",
                    "phase": name,
                    "when": when,
                    "proc": spec["proc"],
                    "seconds": spec["seconds"],
                }
            )

    def pending(self) -> list[dict]:
        """Registered faults that have not fired yet."""
        return [dict(s) for s in self._specs if not s["done"]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(registered={len(self._specs)}, fired={len(self.fired)})"
        )
