"""Lowering and end-to-end interpreter tests.

The key integration property: a directive program through the full
tokenize/parse/analyze/lower pipeline produces bit-identical results to
the hand-coded core API (the paper's compiler-vs-hand comparison).
"""

import numpy as np
import pytest

from repro.core import ArrayRef, ForallLoop, IrregularProgram, Reduce
from repro.lang import compile_expression, lower_forall, parse, run_program
from repro.lang.ast_nodes import ForallStmt
from repro.machine import Machine


def get_forall(src) -> ForallStmt:
    return [s for s in parse(src).statements if isinstance(s, ForallStmt)][0]


class TestCompileExpression:
    def compile(self, text, scalars=None):
        f = get_forall(f"FORALL i = 1, n\n y(ia(i)) = {text}\nEND FORALL")
        return compile_expression(f.body[0].expr, "I", scalars)

    def test_simple_sum(self):
        func, refs, flops = self.compile("x(ia(i)) + x(ib(i))")
        assert refs == (ArrayRef("X", "IA"), ArrayRef("X", "IB"))
        out = func(np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        assert out.tolist() == [11.0, 22.0]
        assert flops == 1.0

    def test_duplicate_refs_share_slot(self):
        func, refs, flops = self.compile("x(ia(i)) * x(ia(i))")
        assert len(refs) == 1
        assert func(np.array([3.0]))[0] == 9.0

    def test_constants_and_precedence(self):
        func, refs, _ = self.compile("2.0 * x(ia(i)) + 1.0")
        assert func(np.array([5.0]))[0] == 11.0

    def test_unary_minus(self):
        func, refs, _ = self.compile("-x(ia(i))")
        assert func(np.array([4.0]))[0] == -4.0

    def test_power(self):
        func, _, flops = self.compile("x(ia(i)) ** 2")
        assert func(np.array([3.0]))[0] == 9.0
        assert flops >= 8.0

    def test_intrinsics(self):
        func, _, _ = self.compile("SQRT(ABS(x(ia(i))))")
        assert func(np.array([-16.0]))[0] == 4.0

    def test_min_max_variadic(self):
        func, refs, _ = self.compile("MAX(x(ia(i)), x(ib(i)), 0.0)")
        assert func(np.array([-5.0]), np.array([-2.0]))[0] == 0.0

    def test_scalar_binding(self):
        func, _, _ = self.compile("alpha * x(ia(i))", scalars={"ALPHA": 2.5})
        assert func(np.array([4.0]))[0] == 10.0

    def test_unbound_scalar(self):
        with pytest.raises(KeyError, match="ALPHA"):
            self.compile("alpha * x(ia(i))")

    def test_division(self):
        func, _, _ = self.compile("x(ia(i)) / 4.0")
        assert func(np.array([10.0]))[0] == 2.5

    def test_wrong_arity_call(self):
        func, refs, _ = self.compile("x(ia(i)) + x(ib(i))")
        with pytest.raises(ValueError, match="takes 2 operands"):
            func(np.array([1.0]))


class TestLowerForall:
    def test_reduce_lowering(self):
        f = get_forall(
            "FORALL i = 1, m\n REDUCE (ADD, y(e1(i)), x(e1(i)) * x(e2(i)))\nEND FORALL"
        )
        loop = lower_forall(f, {"M": 10})
        assert isinstance(loop, ForallLoop)
        assert loop.n_iterations == 10
        stmt = loop.statements[0]
        assert isinstance(stmt, Reduce) and stmt.op == "add"
        assert stmt.lhs == ArrayRef("Y", "E1")

    def test_one_based_bounds(self):
        f = get_forall("FORALL i = 1, n\n y(i) = x(i)\nEND FORALL")
        loop = lower_forall(f, {"N": 7})
        assert loop.n_iterations == 7

    def test_non_unit_lower_bound_rejected(self):
        f = get_forall("FORALL i = 2, n\n y(i) = x(i)\nEND FORALL")
        with pytest.raises(ValueError, match="must start at 1"):
            lower_forall(f, {"N": 7})

    def test_loop_name_includes_line(self):
        f = get_forall("FORALL i = 1, n\n y(i) = x(i)\nEND FORALL")
        loop = lower_forall(f, {"N": 3})
        assert loop.name.startswith("forall_L")


FIGURE4 = """
REAL*8 x(nnode), y(nnode)
INTEGER end_pt1(nedge), end_pt2(nedge)
DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
DISTRIBUTE reg(BLOCK), reg2(BLOCK)
ALIGN x, y WITH reg
ALIGN end_pt1, end_pt2 WITH reg2
C$ CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$ SET distfmt BY PARTITIONING G USING RSB
C$ REDISTRIBUTE reg(distfmt)
DO t = 1, 5
  FORALL i = 1, nedge
    REDUCE (ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
    REDUCE (ADD, y(end_pt2(i)), x(end_pt1(i)) - x(end_pt2(i)))
  END FORALL
END DO
"""


def make_inputs(n_nodes=24, n_edges=40, seed=0):
    rng = np.random.default_rng(seed)
    e1 = rng.integers(0, n_nodes, n_edges)
    e2 = (e1 + 1 + rng.integers(0, n_nodes - 1, n_edges)) % n_nodes
    x = rng.normal(size=n_nodes)
    return x, e1, e2


class TestEndToEnd:
    def test_figure4_program_runs_and_matches_reference(self):
        x, e1, e2 = make_inputs()
        m = Machine(4)
        cp = run_program(
            FIGURE4,
            m,
            sizes={"NNODE": 24, "NEDGE": 40},
            data={"X": x, "END_PT1": e1, "END_PT2": e2},
        )
        want = np.zeros(24)
        for _ in range(5):
            np.add.at(want, e1, x[e1] * x[e2])
            np.add.at(want, e2, x[e1] - x[e2])
        assert np.allclose(cp.array_global("Y"), want)

    def test_schedule_reuse_happens_inside_do_loop(self):
        x, e1, e2 = make_inputs()
        m = Machine(4)
        cp = run_program(
            FIGURE4,
            m,
            sizes={"NNODE": 24, "NEDGE": 40},
            data={"X": x, "END_PT1": e1, "END_PT2": e2},
        )
        assert cp.program.inspector_runs == 1
        assert cp.program.reuse_hits == 4
        assert cp.executed_foralls == 5

    def test_arrays_redistributed(self):
        x, e1, e2 = make_inputs()
        m = Machine(4)
        cp = run_program(
            FIGURE4,
            m,
            sizes={"NNODE": 24, "NEDGE": 40},
            data={"X": x, "END_PT1": e1, "END_PT2": e2},
        )
        assert cp.program.arrays["X"].distribution.kind == "irregular"
        assert m.elapsed() > 0

    def test_compiled_equals_hand_coded(self):
        """The paper's comparison: compiler-generated code vs hand-embedded
        CHAOS calls must compute identical results."""
        x, e1, e2 = make_inputs(seed=5)
        m1 = Machine(4)
        cp = run_program(
            FIGURE4,
            m1,
            sizes={"NNODE": 24, "NEDGE": 40},
            data={"X": x, "END_PT1": e1, "END_PT2": e2},
        )

        m2 = Machine(4)
        prog = IrregularProgram(m2, track=False)
        prog.decomposition("reg", 24)
        prog.decomposition("reg2", 40)
        prog.distribute("reg", "block")
        prog.distribute("reg2", "block")
        prog.array("X", "reg", values=x)
        prog.array("Y", "reg", values=np.zeros(24))
        prog.array("END_PT1", "reg2", values=e1, dtype=np.int64)
        prog.array("END_PT2", "reg2", values=e2, dtype=np.int64)
        prog.construct("G", 24, link=("END_PT1", "END_PT2"))
        prog.set_distribution("distfmt", "G", "RSB")
        prog.redistribute("reg", "distfmt")
        x1, x2 = ArrayRef("X", "END_PT1"), ArrayRef("X", "END_PT2")
        loop = ForallLoop(
            "hand",
            40,
            [
                Reduce("add", ArrayRef("Y", "END_PT1"), lambda a, b: a * b, (x1, x2), flops=2),
                Reduce("add", ArrayRef("Y", "END_PT2"), lambda a, b: a - b, (x1, x2), flops=2),
            ],
        )
        prog.forall(loop, n_times=5)
        assert np.allclose(cp.array_global("Y"), prog.arrays["Y"].to_global())

    def test_geometry_program(self):
        src = """
        REAL*8 x(n), y(n), xc(n), yc(n)
        INTEGER ia(n), ib(n)
        DYNAMIC, DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN x, y, xc, yc, ia, ib WITH reg
        C$ CONSTRUCT G (n, GEOMETRY(2, xc, yc))
        C$ SET fmt BY PARTITIONING G USING RCB
        C$ REDISTRIBUTE reg(fmt)
        FORALL i = 1, n
          y(ia(i)) = x(ib(i)) * 3.0
        END FORALL
        """
        rng = np.random.default_rng(2)
        n = 16
        ia = rng.permutation(n)
        ib = rng.integers(0, n, n)
        x = rng.normal(size=n)
        m = Machine(4)
        cp = run_program(
            src,
            m,
            sizes={"N": n},
            data={
                "X": x,
                "IA": ia,
                "IB": ib,
                "XC": rng.normal(size=n),
                "YC": rng.normal(size=n),
            },
        )
        want = np.zeros(n)
        want[ia] = x[ib] * 3.0
        assert np.allclose(cp.array_global("Y"), want)

    def test_missing_size_symbol(self):
        with pytest.raises(KeyError, match="NNODE"):
            run_program(FIGURE4, Machine(4), sizes={"NEDGE": 40})

    def test_bad_initial_data_shape(self):
        with pytest.raises(ValueError, match="initial data"):
            run_program(
                FIGURE4,
                Machine(4),
                sizes={"NNODE": 24, "NEDGE": 40},
                data={"X": np.zeros(3)},
            )

    def test_zero_trip_do_loop(self):
        src = """
        REAL*8 x(n), y(n)
        INTEGER ia(n)
        DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN x, y, ia WITH reg
        DO t = 1, 0
          FORALL i = 1, n
            REDUCE (ADD, y(ia(i)), x(ia(i)))
          END FORALL
        END DO
        """
        cp = run_program(
            src, Machine(2), sizes={"N": 8}, data={"IA": np.arange(8)}
        )
        assert cp.executed_foralls == 0
        assert np.allclose(cp.array_global("Y"), 0)


class TestEvalConst:
    """Constant folding of size/bound expressions (all binary operators)."""

    def test_binop_constants_fold(self):
        from repro.lang.ast_nodes import BinOp, Num, Var
        from repro.lang.lower import _eval_const

        env = {"n": 8.0}
        assert _eval_const(BinOp("+", Num(2), Num(3)), env) == 5.0
        assert _eval_const(BinOp("-", Num(2), Num(3)), env) == -1.0
        assert _eval_const(BinOp("*", Var("n"), Num(3)), env) == 24.0
        assert _eval_const(BinOp("/", Var("n"), Num(2)), env) == 4.0
        assert _eval_const(BinOp("**", Num(2), Num(5)), env) == 32.0
