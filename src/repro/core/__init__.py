"""The paper's primary contribution.

Two mechanisms sit here, on top of the CHAOS runtime:

* **Conservative communication-schedule reuse** (Section 3):
  :class:`~repro.core.dad.DAD` data access descriptors, the global
  ``nmod`` timestamp registry (:mod:`~repro.core.timestamps`), per-loop
  inspector records (:mod:`~repro.core.records`) and the three-condition
  reuse check (:mod:`~repro.core.reuse`).

* **Compiler-coupled data partitioning** (Section 4): the GeoCoL
  geometry/connectivity/load graph (:mod:`~repro.core.geocol`), the
  mapper coupler that feeds it to a registered partitioner
  (:mod:`~repro.core.mapper`), and loop-iteration partitioning under the
  almost-owner-computes rule (:mod:`~repro.core.iteration`).

:mod:`~repro.core.forall` defines the FORALL/REDUCE loop form the paper
assumes; :mod:`~repro.core.inspector` / :mod:`~repro.core.executor`
implement the inspector-executor transformation; and
:mod:`~repro.core.program` ties everything into the runtime context that
compiler-generated code (or a user, via the same API) drives.
"""

from repro.core.dad import DAD
from repro.core.timestamps import ModificationRegistry
from repro.core.records import InspectorRecord
from repro.core.reuse import can_reuse, ReuseDecision
from repro.core.forall import ArrayRef, Assign, Reduce, ForallLoop
from repro.core.iteration import IterationPartition, partition_iterations
from repro.core.geocol import GeoCoL, construct_geocol
from repro.core.mapper import partition_geocol
from repro.core.inspector import InspectorProduct, PatternData, run_inspector
from repro.core.weights import derive_loop_weights
from repro.core.executor import run_executor
from repro.core.program import IrregularProgram

__all__ = [
    "DAD",
    "ModificationRegistry",
    "InspectorRecord",
    "can_reuse",
    "ReuseDecision",
    "ArrayRef",
    "Assign",
    "Reduce",
    "ForallLoop",
    "IterationPartition",
    "partition_iterations",
    "GeoCoL",
    "construct_geocol",
    "partition_geocol",
    "InspectorProduct",
    "PatternData",
    "run_inspector",
    "run_executor",
    "derive_loop_weights",
    "IrregularProgram",
]
