"""PARTI *localize*: the primitive at the heart of every inspector.

Given, per processor, the list of global indices its loop iterations will
reference, ``localize``

1. translates every reference through the translation table,
2. separates on-processor from off-processor references,
3. deduplicates the off-processor ones and assigns each unique element a
   ghost-buffer slot ("information that associates off-processor data
   copies with on-processor buffer locations", Section 1),
4. rewrites each reference list into *localized* indices -- offsets into
   the concatenation ``[local segment | ghost buffer]`` -- so the executor
   is pure local indexing, and
5. builds the :class:`~repro.chaos.schedule.CommSchedule` that fetches
   the ghost elements.

The cost charged mirrors what PARTI's hashed implementation did per
reference: a hash probe per reference, an insert per unique off-processor
element, schedule assembly per unique element, and a request exchange
telling each owner which of its elements to send.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.schedule import CommSchedule
from repro.chaos.ttable import TranslationTable
from repro.machine.machine import Machine


@dataclass
class LocalizeResult:
    """Everything an executor needs for one access pattern.

    Attributes
    ----------
    local_refs:
        Per processor, the reference list rewritten to localized indices:
        values ``< local_size`` index the local segment, values ``>=
        local_size`` index ghost slot ``value - local_size``.
    ghost_globals:
        Per processor, the unique off-processor global indices in ghost
        slot order (useful for debugging and tests).
    local_sizes:
        Per processor, the local segment size of the inspected
        distribution (the local/ghost boundary).
    schedule:
        The communication schedule that fills the ghost buffers.
    """

    local_refs: list[np.ndarray]
    ghost_globals: list[np.ndarray]
    local_sizes: list[int]
    schedule: CommSchedule

    def split(self, p: int) -> tuple[np.ndarray, np.ndarray]:
        """Boolean masks (is_local, is_ghost) for processor ``p``'s refs."""
        refs = self.local_refs[p]
        is_local = refs < self.local_sizes[p]
        return is_local, ~is_local


def localize(
    machine: Machine,
    ttable: TranslationTable,
    ref_lists: list[np.ndarray],
    costs: ChaosCosts = DEFAULT_COSTS,
) -> LocalizeResult:
    """Run the localize primitive for one access pattern.

    Parameters
    ----------
    machine:
        The simulated machine to charge.
    ttable:
        Translation table of the *data* array's distribution.
    ref_lists:
        ``ref_lists[p]`` is the array of global indices processor ``p``'s
        iterations dereference (repeats allowed and common).
    """
    n = machine.n_procs
    if len(ref_lists) != n:
        raise ValueError(f"expected {n} reference lists, got {len(ref_lists)}")
    dist = ttable.dist
    ref_arrays = [np.asarray(r, dtype=np.int64) for r in ref_lists]
    translations = ttable.dereference_all(ref_arrays)

    local_sizes = [dist.local_size(p) for p in range(n)]
    send_lists: dict[tuple[int, int], np.ndarray] = {}
    recv_slots: dict[tuple[int, int], np.ndarray] = {}
    req_counts = np.zeros((n, n), dtype=np.int64)

    # flatten every processor's reference list into one array and do the
    # translate/dedup/slot-assignment work for all processors at once --
    # per-processor results are recovered as (contiguous) segments
    sizes = np.asarray([r.size for r in ref_arrays], dtype=np.int64)
    total = int(sizes.sum())
    flat_refs = (
        np.concatenate(ref_arrays) if total else np.empty(0, dtype=np.int64)
    )
    flat_owner = (
        np.concatenate([t[0] for t in translations])
        if total
        else np.empty(0, dtype=np.int64)
    )
    flat_lidx = (
        np.concatenate([t[1] for t in translations])
        if total
        else np.empty(0, dtype=np.int64)
    )
    flat_pid = np.repeat(np.arange(n, dtype=np.int64), sizes)

    off = flat_owner != flat_pid
    n_off = np.bincount(flat_pid[off], minlength=n)
    # dedup off-processor references per processor with one keyed unique;
    # np.unique gives deterministic (sorted-global) ghost slot order per
    # processor, like PARTI's hashed order.  Keys cannot collide across
    # processors because every global index is < dist.size.
    stride = max(dist.size, 1)
    keys = flat_pid[off] * stride + flat_refs[off]
    uniq_keys, inverse = np.unique(keys, return_inverse=True)
    upid = uniq_keys // stride
    ugidx = uniq_keys - upid * stride
    ghost_counts = np.bincount(upid, minlength=n)
    ghost_bounds = np.concatenate(([0], np.cumsum(ghost_counts)))
    slots = np.arange(uniq_keys.size, dtype=np.int64) - ghost_bounds[upid]
    ghost_sizes = [int(c) for c in ghost_counts]
    ghost_globals = [
        ugidx[ghost_bounds[p] : ghost_bounds[p + 1]] for p in range(n)
    ]

    # rewrite every reference to a localized index: local offsets stay,
    # off-processor references become local_size + ghost slot
    localized_flat = np.empty(total, dtype=np.int64)
    localized_flat[~off] = flat_lidx[~off]
    local_sizes_arr = np.asarray(local_sizes, dtype=np.int64)
    localized_flat[off] = local_sizes_arr[flat_pid[off]] + slots[inverse]
    ref_bounds = np.concatenate(([0], np.cumsum(sizes)))
    local_refs = [
        localized_flat[ref_bounds[p] : ref_bounds[p + 1]] for p in range(n)
    ]

    # build schedule entries for each (owner q, requester p) pair: one
    # stable sort groups the unique ghosts requester-major, owner-minor,
    # ghost slots ascending within each owner (as per-owner masking did)
    uowners = np.asarray(dist.owner(ugidx), dtype=np.int64) if ugidx.size else ugidx
    ulidx = (
        np.asarray(dist.local_index(ugidx), dtype=np.int64) if ugidx.size else ugidx
    )
    order = np.argsort(upid * n + uowners, kind="stable")
    pair_keys = upid[order] * n + uowners[order]
    seg_keys, seg_starts = np.unique(pair_keys, return_index=True)
    seg_bounds = np.append(seg_starts, order.size)
    sorted_lidx = ulidx[order]
    sorted_slots = slots[order]
    for i, key in enumerate(seg_keys):
        p, q = divmod(int(key), n)
        lo, hi = seg_bounds[i], seg_bounds[i + 1]
        send_lists[(q, p)] = sorted_lidx[lo:hi]
        recv_slots[(q, p)] = sorted_slots[lo:hi]
        req_counts[p, q] = hi - lo

    # charge inspector integer work per processor: one hash probe per
    # reference, an insert per unique ghost, schedule build + buffer
    # assignment, and a localized-index rewrite probe per off-proc ref
    ghost_f = ghost_counts.astype(np.float64)
    machine.charge_compute_all(
        iops=(
            costs.hash_lookup * sizes.astype(np.float64)
            + costs.hash_insert * ghost_f
            + costs.schedule_build * ghost_f
            + costs.buffer_assign * ghost_f
            + costs.hash_lookup * n_off.astype(np.float64)
        ),
    )

    # request exchange: each requester tells each owner which local
    # elements to send (index lists on the wire); owners then record
    # their send lists
    off_diag = req_counts.copy()
    np.fill_diagonal(off_diag, 0)
    req_p, req_q = np.nonzero(off_diag)
    machine.exchange(
        src=req_p, dst=req_q, nbytes=off_diag[req_p, req_q] * costs.index_bytes
    )
    owner_record = req_counts.sum(axis=0).astype(float)
    machine.charge_compute_all(iops=costs.schedule_build * owner_record)
    machine.barrier()

    schedule = CommSchedule(
        machine,
        dist.signature(),
        send_lists,
        recv_slots,
        ghost_sizes,
        costs=costs,
    )
    return LocalizeResult(
        local_refs=local_refs,
        ghost_globals=ghost_globals,
        local_sizes=local_sizes,
        schedule=schedule,
    )
